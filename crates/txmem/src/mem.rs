use std::sync::atomic::{AtomicU64, Ordering};

use crate::addr::{Addr, WORD_BYTES};

/// Configuration for the simulated address space.
#[derive(Clone, Copy, Debug)]
pub struct MemConfig {
    /// Maximum number of worker threads that can own a stack region.
    pub max_threads: usize,
    /// Words per per-thread stack region.
    pub stack_words: usize,
    /// Words in the shared heap region.
    pub heap_words: usize,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            max_threads: 32,
            stack_words: 1 << 14, // 128 KiB per thread
            heap_words: 1 << 22,  // 32 MiB heap
        }
    }
}

impl MemConfig {
    /// A small configuration for unit tests.
    pub fn small() -> Self {
        MemConfig {
            max_threads: 8,
            stack_words: 1 << 10,
            heap_words: 1 << 16,
        }
    }
}

/// Resolved layout of the simulated address space (all in *byte* addresses):
///
/// ```text
/// [ word 0: NULL | stacks: max_threads x stack_words | heap ............ ]
/// ```
#[derive(Clone, Copy, Debug)]
pub struct MemLayout {
    pub max_threads: usize,
    pub stack_bytes: u64,
    /// Byte address of the *lowest* stack word (thread 0's limit).
    pub stacks_start: u64,
    /// Byte address one past the last stack word == heap start.
    pub heap_start: u64,
    /// Byte address one past the end of the heap.
    pub heap_end: u64,
}

impl MemLayout {
    fn new(cfg: &MemConfig) -> MemLayout {
        let stacks_start = WORD_BYTES; // word 0 reserved for NULL
        let stack_bytes = cfg.stack_words as u64 * WORD_BYTES;
        let heap_start = stacks_start + cfg.max_threads as u64 * stack_bytes;
        let heap_end = heap_start + cfg.heap_words as u64 * WORD_BYTES;
        MemLayout {
            max_threads: cfg.max_threads,
            stack_bytes,
            stacks_start,
            heap_start,
            heap_end,
        }
    }

    /// `[limit, base)` byte range of thread `tid`'s stack. The stack grows
    /// *downward* from `base` toward `limit`, as in the paper's Figure 3.
    pub fn stack_range(&self, tid: usize) -> (u64, u64) {
        assert!(tid < self.max_threads, "thread id {tid} out of range");
        let limit = self.stacks_start + tid as u64 * self.stack_bytes;
        (limit, limit + self.stack_bytes)
    }

    /// True if `addr` lies in the heap region.
    #[inline]
    pub fn in_heap(&self, addr: Addr) -> bool {
        addr.0 >= self.heap_start && addr.0 < self.heap_end
    }
}

/// The simulated flat shared memory: an array of 64-bit words.
///
/// Loads and stores are implemented with atomics so that racy access from the
/// STM's optimistic readers is well-defined; version validation in the STM
/// (not the hardware) is what makes the values consistent, exactly as in a
/// native STM runtime.
pub struct SharedMem {
    words: Box<[AtomicU64]>,
    layout: MemLayout,
}

impl SharedMem {
    pub fn new(cfg: MemConfig) -> SharedMem {
        let layout = MemLayout::new(&cfg);
        let total_words = (layout.heap_end / WORD_BYTES) as usize;
        let mut v = Vec::with_capacity(total_words);
        v.resize_with(total_words, || AtomicU64::new(0));
        SharedMem {
            words: v.into_boxed_slice(),
            layout,
        }
    }

    #[inline]
    pub fn layout(&self) -> &MemLayout {
        &self.layout
    }

    /// Total size of the address space in bytes.
    #[inline]
    pub fn size_bytes(&self) -> u64 {
        self.words.len() as u64 * WORD_BYTES
    }

    #[inline]
    fn slot(&self, addr: Addr) -> &AtomicU64 {
        debug_assert!(addr.is_aligned(), "unaligned access at {addr}");
        debug_assert!(!addr.is_null(), "null dereference");
        &self.words[addr.word_index()]
    }

    /// Plain (non-transactional) load. Used by setup/verify phases and by
    /// barriers once the STM has established it is safe.
    #[inline]
    pub fn load(&self, addr: Addr) -> u64 {
        self.slot(addr).load(Ordering::Acquire)
    }

    /// Plain (non-transactional) store.
    #[inline]
    pub fn store(&self, addr: Addr, val: u64) {
        self.slot(addr).store(val, Ordering::Release)
    }

    /// Relaxed load used on thread-private (captured) memory where no
    /// synchronization is needed.
    #[inline]
    pub fn load_private(&self, addr: Addr) -> u64 {
        self.slot(addr).load(Ordering::Relaxed)
    }

    /// Relaxed store used on thread-private (captured) memory.
    #[inline]
    pub fn store_private(&self, addr: Addr, val: u64) {
        self.slot(addr).store(val, Ordering::Relaxed)
    }

    /// Load a float stored with [`SharedMem::store_f64`].
    #[inline]
    pub fn load_f64(&self, addr: Addr) -> f64 {
        f64::from_bits(self.load(addr))
    }

    /// Store a float as its bit pattern (all simulated words are u64).
    #[inline]
    pub fn store_f64(&self, addr: Addr, val: f64) {
        self.store(addr, val.to_bits())
    }

    /// Load a pointer-typed word.
    #[inline]
    pub fn load_addr(&self, addr: Addr) -> Addr {
        Addr::from_raw(self.load(addr))
    }

    /// Bulk load of `dst.len()` consecutive words starting at `start` —
    /// the captured-run lowering of the ranged barriers. One bounds check
    /// up front, then a real `memcpy`: "private" is the caller's promise
    /// that no other thread accesses these words concurrently (captured
    /// memory is thread-private by definition), which is exactly what
    /// lets a captured run skip the per-word atomic loop the compiler
    /// cannot vectorize.
    #[inline]
    pub fn load_range_private(&self, start: Addr, dst: &mut [u64]) {
        debug_assert!(start.is_aligned() && !start.is_null());
        let base = start.word_index();
        let words = &self.words[base..base + dst.len()];
        // SAFETY: `AtomicU64` has the same size and bit validity as `u64`,
        // and the private contract rules out concurrent accessors.
        unsafe {
            std::ptr::copy_nonoverlapping(
                words.as_ptr() as *const u64,
                dst.as_mut_ptr(),
                dst.len(),
            );
        }
    }

    /// Bulk store of `src` starting at `start`; see
    /// [`SharedMem::load_range_private`] for the private-memcpy contract.
    #[inline]
    pub fn store_range_private(&self, start: Addr, src: &[u64]) {
        debug_assert!(start.is_aligned() && !start.is_null());
        let base = start.word_index();
        let words = &self.words[base..base + src.len()];
        // SAFETY: as in `load_range_private` — same layout, no concurrent
        // accessors on captured memory.
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), words.as_ptr() as *mut u64, src.len());
        }
    }

    /// Snapshot a byte range into a fresh vector of words. Used by the
    /// durable checkpointer, which quiesces all transactions first — the
    /// private-memcpy contract of [`SharedMem::load_range_private`] then
    /// holds for the whole heap.
    pub fn snapshot_range(&self, start: Addr, bytes: u64) -> Vec<u64> {
        debug_assert!(bytes.is_multiple_of(WORD_BYTES));
        let mut out = vec![0u64; (bytes / WORD_BYTES) as usize];
        self.load_range_private(start, &mut out);
        out
    }

    /// Restore a snapshot taken with [`SharedMem::snapshot_range`]. Used by
    /// crash recovery before any transaction runs, so the private contract
    /// holds trivially.
    pub fn restore_range(&self, start: Addr, words: &[u64]) {
        self.store_range_private(start, words);
    }

    /// Zero a byte range (must be word aligned).
    pub fn zero_range(&self, start: Addr, bytes: u64) {
        debug_assert!(start.is_aligned() && bytes.is_multiple_of(WORD_BYTES));
        let mut a = start;
        let end = start.offset(bytes);
        while a < end {
            self.store_private(a, 0);
            a = a.offset(WORD_BYTES);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_regions_are_disjoint_and_ordered() {
        let mem = SharedMem::new(MemConfig::small());
        let l = *mem.layout();
        assert_eq!(l.stacks_start, 8);
        let (lim0, base0) = l.stack_range(0);
        let (lim1, base1) = l.stack_range(1);
        assert_eq!(base0, lim1);
        assert!(lim0 < base0 && lim1 < base1);
        let (_, base_last) = l.stack_range(l.max_threads - 1);
        assert_eq!(base_last, l.heap_start);
        assert!(l.heap_start < l.heap_end);
        assert_eq!(mem.size_bytes(), l.heap_end);
    }

    #[test]
    fn load_store_roundtrip() {
        let mem = SharedMem::new(MemConfig::small());
        let a = Addr(mem.layout().heap_start);
        mem.store(a, 0xfeedface);
        assert_eq!(mem.load(a), 0xfeedface);
        mem.store_private(a.word(1), 7);
        assert_eq!(mem.load_private(a.word(1)), 7);
    }

    #[test]
    fn f64_roundtrip() {
        let mem = SharedMem::new(MemConfig::small());
        let a = Addr(mem.layout().heap_start);
        mem.store_f64(a, -3.25);
        assert_eq!(mem.load_f64(a), -3.25);
    }

    #[test]
    fn zero_range_clears_words() {
        let mem = SharedMem::new(MemConfig::small());
        let a = Addr(mem.layout().heap_start);
        for i in 0..4 {
            mem.store(a.word(i), 99);
        }
        mem.zero_range(a, 4 * WORD_BYTES);
        for i in 0..4 {
            assert_eq!(mem.load(a.word(i)), 0);
        }
    }

    #[test]
    fn range_private_roundtrip() {
        let mem = SharedMem::new(MemConfig::small());
        let a = Addr(mem.layout().heap_start);
        let src: Vec<u64> = (0..16).map(|i| i * 3 + 1).collect();
        mem.store_range_private(a, &src);
        let mut dst = vec![0u64; 16];
        mem.load_range_private(a, &mut dst);
        assert_eq!(src, dst);
        // Bulk stores are visible to per-word loads and vice versa.
        assert_eq!(mem.load(a.word(5)), 16);
        mem.store(a.word(5), 99);
        mem.load_range_private(a.word(5), &mut dst[..1]);
        assert_eq!(dst[0], 99);
        // Empty ranges are fine.
        mem.load_range_private(a, &mut []);
        mem.store_range_private(a, &[]);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mem = SharedMem::new(MemConfig::small());
        let a = Addr(mem.layout().heap_start);
        for i in 0..8 {
            mem.store(a.word(i), 100 + i);
        }
        let snap = mem.snapshot_range(a, 8 * WORD_BYTES);
        assert_eq!(snap, (0..8).map(|i| 100 + i).collect::<Vec<u64>>());
        mem.zero_range(a, 8 * WORD_BYTES);
        mem.restore_range(a, &snap);
        for i in 0..8 {
            assert_eq!(mem.load(a.word(i)), 100 + i);
        }
    }

    #[test]
    fn in_heap_classification() {
        let mem = SharedMem::new(MemConfig::small());
        let l = *mem.layout();
        assert!(l.in_heap(Addr(l.heap_start)));
        assert!(!l.in_heap(Addr(l.heap_start - 8)));
        assert!(!l.in_heap(Addr(l.heap_end)));
    }

    #[test]
    #[should_panic]
    fn stack_range_rejects_bad_tid() {
        let mem = SharedMem::new(MemConfig::small());
        let _ = mem.layout().stack_range(1000);
    }
}
