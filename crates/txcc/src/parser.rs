//! Recursive-descent parser for TL with precedence-climbing expressions.

use crate::ast::{BinOp, Expr, Function, Program, Stmt, UnOp};
use crate::lexer::{Lexer, Tok};

/// A syntax error with a human-readable description.
#[derive(Debug, Clone)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Parse TL source into a [`Program`], assigning a fresh [`crate::ast::SiteId`]
/// to every memory-access site.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let mut p = Parser::new(src)?;
    let mut functions = Vec::new();
    while p.cur != Tok::Eof {
        functions.push(p.function()?);
    }
    Ok(Program {
        functions,
        n_sites: p.next_site,
    })
}

struct Parser<'a> {
    lex: Lexer<'a>,
    cur: Tok,
    next_site: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Result<Parser<'a>, ParseError> {
        let mut lex = Lexer::new(src);
        let cur = lex.next().map_err(ParseError)?;
        Ok(Parser {
            lex,
            cur,
            next_site: 0,
        })
    }

    fn bump(&mut self) -> Result<Tok, ParseError> {
        let next = self.lex.next().map_err(ParseError)?;
        Ok(std::mem::replace(&mut self.cur, next))
    }

    fn expect(&mut self, t: Tok) -> Result<(), ParseError> {
        if self.cur == t {
            self.bump()?;
            Ok(())
        } else {
            Err(ParseError(format!(
                "line {}: expected {:?}, found {:?}",
                self.lex.line, t, self.cur
            )))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump()? {
            Tok::Ident(s) => Ok(s),
            t => Err(ParseError(format!(
                "line {}: expected identifier, found {:?}",
                self.lex.line, t
            ))),
        }
    }

    fn fresh_site(&mut self) -> usize {
        let s = self.next_site;
        self.next_site += 1;
        s
    }

    fn function(&mut self) -> Result<Function, ParseError> {
        self.expect(Tok::Fn)?;
        let name = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if self.cur != Tok::RParen {
            loop {
                params.push(self.ident()?);
                if self.cur == Tok::Comma {
                    self.bump()?;
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        let body = self.block()?;
        Ok(Function { name, params, body })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while self.cur != Tok::RBrace {
            stmts.push(self.stmt()?);
        }
        self.expect(Tok::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.cur.clone() {
            Tok::Var => {
                self.bump()?;
                let name = self.ident()?;
                let init = if self.cur == Tok::Assign {
                    self.bump()?;
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(Tok::Semi)?;
                Ok(Stmt::VarDecl(name, init))
            }
            Tok::If => {
                self.bump()?;
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let then = self.block()?;
                let els = if self.cur == Tok::Else {
                    self.bump()?;
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(cond, then, els))
            }
            Tok::While => {
                self.bump()?;
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(Stmt::While(cond, self.block()?))
            }
            Tok::Return => {
                self.bump()?;
                let e = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Return(e))
            }
            Tok::Atomic => {
                self.bump()?;
                Ok(Stmt::Atomic(self.block()?))
            }
            Tok::Free => {
                self.bump()?;
                self.expect(Tok::LParen)?;
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Free(e))
            }
            _ => {
                // assignment (x = e; / base[idx] = e;) or expression stmt
                let e = self.expr()?;
                match (&e, &self.cur) {
                    (Expr::Var(name), Tok::Assign) => {
                        let name = name.clone();
                        self.bump()?;
                        let val = self.expr()?;
                        self.expect(Tok::Semi)?;
                        Ok(Stmt::Assign(name, val))
                    }
                    (Expr::Load { .. }, Tok::Assign) => {
                        self.bump()?;
                        let val = self.expr()?;
                        self.expect(Tok::Semi)?;
                        if let Expr::Load { base, idx, site } = e {
                            Ok(Stmt::Store {
                                base: *base,
                                idx: *idx,
                                val,
                                site,
                            })
                        } else {
                            unreachable!()
                        }
                    }
                    _ => {
                        self.expect(Tok::Semi)?;
                        Ok(Stmt::ExprStmt(e))
                    }
                }
            }
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.binary(0)
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.cur {
                Tok::OrOr => (BinOp::Or, 1),
                Tok::AndAnd => (BinOp::And, 2),
                Tok::EqEq => (BinOp::Eq, 3),
                Tok::Ne => (BinOp::Ne, 3),
                Tok::Lt => (BinOp::Lt, 4),
                Tok::Le => (BinOp::Le, 4),
                Tok::Gt => (BinOp::Gt, 4),
                Tok::Ge => (BinOp::Ge, 4),
                Tok::Plus => (BinOp::Add, 5),
                Tok::Minus => (BinOp::Sub, 5),
                Tok::Star => (BinOp::Mul, 6),
                Tok::Slash => (BinOp::Div, 6),
                Tok::Percent => (BinOp::Mod, 6),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump()?;
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.cur.clone() {
            Tok::Minus => {
                self.bump()?;
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary()?)))
            }
            Tok::Bang => {
                self.bump()?;
                Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?)))
            }
            Tok::Amp => {
                self.bump()?;
                Ok(Expr::AddrOf(self.ident()?))
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        while self.cur == Tok::LBracket {
            self.bump()?;
            let idx = self.expr()?;
            self.expect(Tok::RBracket)?;
            e = Expr::Load {
                base: Box::new(e),
                idx: Box::new(idx),
                site: self.fresh_site(),
            };
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump()? {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Malloc => {
                self.expect(Tok::LParen)?;
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(Expr::Malloc(Box::new(e)))
            }
            Tok::Ident(name) => {
                if self.cur == Tok::LParen {
                    self.bump()?;
                    let mut args = Vec::new();
                    if self.cur != Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if self.cur == Tok::Comma {
                                self.bump()?;
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            t => Err(ParseError(format!(
                "line {}: unexpected token {:?}",
                self.lex.line, t
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_function() {
        let p = parse("fn add(a, b) { return a + b; }").unwrap();
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].params, vec!["a", "b"]);
    }

    #[test]
    fn parses_atomic_malloc_store() {
        let p =
            parse("fn f(s) { atomic { var p = malloc(16); p[0] = 1; s[0] = p[0]; } return 0; }")
                .unwrap();
        assert_eq!(p.n_sites, 3, "two loads-as-lvalue + one rvalue load");
        let f = &p.functions[0];
        assert!(matches!(f.body[0], Stmt::Atomic(_)));
    }

    #[test]
    fn precedence() {
        let p = parse("fn f() { return 1 + 2 * 3 < 10 && 1; }").unwrap();
        // (((1 + (2*3)) < 10) && 1)
        if let Stmt::Return(Expr::Binary(BinOp::And, l, _)) = &p.functions[0].body[0] {
            assert!(matches!(**l, Expr::Binary(BinOp::Lt, _, _)));
        } else {
            panic!("wrong shape");
        }
    }

    #[test]
    fn address_of_and_if_else() {
        let p = parse(
            "fn f() { var x = 0; var q = &x; if (q[0]) { x = 1; } else { x = 2; } return x; }",
        )
        .unwrap();
        assert_eq!(p.functions.len(), 1);
    }

    #[test]
    fn rejects_syntax_errors() {
        assert!(parse("fn f( { }").is_err());
        assert!(parse("fn f() { return 1 }").is_err()); // missing semi
        assert!(parse("1 + 2").is_err());
    }
}
