//! Abstract syntax of the TL mini-language. All values are 64-bit words;
//! pointers are addresses in the simulated memory.

/// Binary operators of the TL mini-language. Arithmetic wraps (matching
/// the VM); comparisons and logic produce 0/1. `Add`/`Sub` double as raw
/// pointer arithmetic, which is what the capture analyses' "pointer
/// arithmetic keeps capture" rule is about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

/// Unary operators: wrapping negation and logical not.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    Not,
}

/// Every memory access in the source carries a unique site id, assigned by
/// the parser; the capture analysis publishes its verdict per site and the
/// code generator consults it.
pub type SiteId = usize;

/// Expressions. Every memory *load* carries its [`SiteId`].
#[derive(Clone, Debug)]
pub enum Expr {
    /// Integer literal.
    Int(u64),
    /// Read of a (register-allocated) local or parameter.
    Var(String),
    /// `base[idx]` — load the `idx`-th word of the block at `base`.
    Load {
        /// Base pointer expression.
        base: Box<Expr>,
        /// Word index (scaled by 8 at execution).
        idx: Box<Expr>,
        /// This access's static site id.
        site: SiteId,
    },
    /// `&x` — address of an (address-taken) local.
    AddrOf(String),
    /// `malloc(bytes)`.
    Malloc(Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation (including raw pointer arithmetic).
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Call `f(args...)`; functions are first-order and named.
    Call(String, Vec<Expr>),
}

/// Statements. Every memory *store* carries its [`SiteId`].
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `var x;` / `var x = e;`
    VarDecl(String, Option<Expr>),
    /// `x = e;`
    Assign(String, Expr),
    /// `base[idx] = val;`
    Store {
        /// Base pointer expression.
        base: Expr,
        /// Word index (scaled by 8 at execution).
        idx: Expr,
        /// Value to store.
        val: Expr,
        /// This access's static site id.
        site: SiteId,
    },
    /// `if (c) { ... } else { ... }` (else may be empty).
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (c) { ... }`
    While(Expr, Vec<Stmt>),
    /// `return e;` — must not appear inside an `atomic` block.
    Return(Expr),
    /// `atomic { ... }` — a transaction.
    Atomic(Vec<Stmt>),
    /// `free(e);`
    Free(Expr),
    /// Expression evaluated for its effects (e.g. a bare call).
    ExprStmt(Expr),
}

/// One TL function: named, first-order, word-typed parameters.
#[derive(Clone, Debug)]
pub struct Function {
    /// Function name (unique within a program).
    pub name: String,
    /// Parameter names, in call order.
    pub params: Vec<String>,
    /// Statement list of the body.
    pub body: Vec<Stmt>,
}

/// A parsed TL program.
#[derive(Clone, Debug)]
pub struct Program {
    /// All functions, in source order.
    pub functions: Vec<Function>,
    /// Total number of memory-access sites allocated by the parser.
    pub n_sites: usize,
}

impl Program {
    /// Look a function up by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Index of a function in [`Program::functions`].
    pub fn function_index(&self, name: &str) -> Option<usize> {
        self.functions.iter().position(|f| f.name == name)
    }
}

/// Walk all statements (including nested blocks) of a function body.
pub fn walk_stmts<'a>(body: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
    for s in body {
        f(s);
        match s {
            Stmt::If(_, t, e) => {
                walk_stmts(t, f);
                walk_stmts(e, f);
            }
            Stmt::While(_, b) | Stmt::Atomic(b) => walk_stmts(b, f),
            _ => {}
        }
    }
}

/// Walk all expressions in a statement.
pub fn walk_exprs<'a>(s: &'a Stmt, f: &mut impl FnMut(&'a Expr)) {
    fn expr<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
        f(e);
        match e {
            Expr::Load { base, idx, .. } => {
                expr(base, f);
                expr(idx, f);
            }
            Expr::Malloc(e) | Expr::Unary(_, e) => expr(e, f),
            Expr::Binary(_, a, b) => {
                expr(a, f);
                expr(b, f);
            }
            Expr::Call(_, args) => args.iter().for_each(|a| expr(a, f)),
            _ => {}
        }
    }
    match s {
        Stmt::VarDecl(_, Some(e))
        | Stmt::Assign(_, e)
        | Stmt::Return(e)
        | Stmt::Free(e)
        | Stmt::ExprStmt(e) => expr(e, f),
        Stmt::Store { base, idx, val, .. } => {
            expr(base, f);
            expr(idx, f);
            expr(val, f);
        }
        Stmt::If(c, _, _) | Stmt::While(c, _) => expr(c, f),
        _ => {}
    }
}

/// Names of locals whose address is taken anywhere in the body — these get
/// simulated-stack slots; everything else lives in virtual registers.
pub fn address_taken(body: &[Stmt]) -> std::collections::HashSet<String> {
    let mut taken = std::collections::HashSet::new();
    walk_stmts(body, &mut |s| {
        walk_exprs(s, &mut |e| {
            if let Expr::AddrOf(name) = e {
                taken.insert(name.clone());
            }
        });
    });
    taken
}
