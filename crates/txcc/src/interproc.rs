//! Interprocedural, field-aware compiler capture analysis.
//!
//! The intraprocedural pass in [`crate::capture`] relies on bounded
//! inlining ([`crate::inline`]) to see through calls: any allocation that
//! crosses a *non-inlined* call boundary — a constructor too big to
//! inline, a factory returning a fresh block — degrades to `Unknown` and
//! keeps its barriers. This module removes that cliff with per-function
//! **summaries** joined to a fixed point over the call graph, so `Elide`
//! verdicts survive calls without any inlining at all.
//!
//! # The summary
//!
//! One [`FnSummary`] per function, computed for the *transactional clone*
//! (the paper's function-cloning scheme: the version used for calls inside
//! atomic blocks), captures three facts:
//!
//! 1. **returns-captured** — the capture state of the return value, as a
//!    *condition* on the parameters ([`Cap::Cond`] with a parameter
//!    bitmask): `fn mk() { return malloc(16); }` returns
//!    unconditionally-captured (`Cond(0)`), `fn id(p) { return p; }`
//!    returns captured-iff-`p`-is (`Cond({0})`);
//! 2. **parameter→return propagation** — the mask composes through
//!    arbitrary call chains: `fn mk2() { return id(mk()); }` resolves to
//!    `Cond(0)` by substituting argument conditions into the callee mask;
//! 3. **parameter store effects** — which pointer parameters are only ever
//!    the target of *bounded, constant-offset* stores (the
//!    capture-keeping writes of an initializer). The caller uses this to
//!    invalidate only the argument's own field facts instead of dropping
//!    everything it knows ([`FnSummary::param_store_end`]); anything
//!    unbounded sets [`FnSummary::clobbers_all`].
//!
//! # The abstract domain
//!
//! Per local variable: `Unknown`, a known integer constant (folded so
//! field offsets resolve), or a pointer (`Abs::Ptr`) carrying a capture
//! condition and — when statically exact — a *location*: (abstract block,
//! byte offset). Blocks are allocation/declaration sites: one per `malloc`
//! expression and one per address-taken local declaration; a block
//! allocated under a loop stands for *many* dynamic blocks and is marked
//! `summary`, which disables its field facts entirely (a strong update on
//! a summarized block would let one iteration's fact describe another
//! iteration's memory).
//!
//! **Field facts** map (block, offset) → abstract value of the word last
//! stored there. They are what makes the analysis *field-aware*: storing a
//! captured pointer into a field of a captured block and loading it back
//! keeps the capture fact — the "laundered through captured memory"
//! pattern the intraprocedural pass loses (its loads always produce
//! `Unknown`).
//!
//! # Soundness argument (DESIGN.md §6.3 carries the full version)
//!
//! * The mini-language allows unrestricted pointer arithmetic, so a store
//!   through *any* inexact base (unknown pointer, non-constant offset,
//!   statically out-of-bounds offset) may hit *any* word of memory: such
//!   stores kill **all** field facts. Only stores with an exact, in-bounds
//!   (block, offset) perform a strong update — and distinct non-summary
//!   blocks are distinct allocations, so exact stores cannot alias each
//!   other's facts. Stores through parameter-derived pointers may alias
//!   other parameters (the caller can pass one block twice) and even the
//!   callee's own blocks via out-of-bounds arithmetic, so they kill every
//!   fact except the stored parameter's other (disjoint) offsets.
//! * Capture conditions only *meet* at joins and loop back-edges (mirroring
//!   the intraprocedural pass), and the `while` fixpoint records verdicts
//!   only from the post-join state, so a verdict holds on every iteration.
//! * Summaries start optimistic (top) and descend monotonically; the
//!   fixed point is sound by induction on the depth of any *terminating*
//!   concrete execution: the callee's effect at a call is the same fixed
//!   point applied to a strictly smaller execution. Offsets saturate at
//!   [`MAX_TRACKED_END`] (escalating to `clobbers_all`), which bounds the
//!   lattice and forces termination; if the round limit is ever hit the
//!   remaining summaries degrade to bottom (sound, never unsound).
//! * Use-after-free is undefined behaviour in the mini-language (exactly
//!   as for the paper's C frontend), so `free` imposes no transfer
//!   obligations — matching the intraprocedural reference pass.
//!
//! Two guarantees are enforced mechanically: the pass elides a **superset**
//! of the intraprocedural pass's sites (debug assertion here, plus the
//! suite's tests), and every elision is validated against the runtime's
//! precise capture oracle by the VM site audit
//! (`tests/interproc_oracle.rs`, `expt elision`).

use std::collections::HashMap;

use crate::ast::{BinOp, Expr, Program, Stmt};
use crate::capture::{merge_verdicts, AnalysisResult, Verdict};

/// Bitmask over a function's parameters (bit i = parameter i). Functions
/// with more than 32 parameters fall back to bottom summaries.
pub type ParamMask = u32;

/// Largest constant byte offset the parameter-store summary tracks before
/// escalating to [`FnSummary::clobbers_all`]; bounds the summary lattice.
pub const MAX_TRACKED_END: u64 = 1 << 16;

/// Summary fixpoint round limit (safety valve; monotone descent converges
/// far earlier on real programs).
const MAX_SUMMARY_ROUNDS: usize = 64;

/// Capture condition of a pointer value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cap {
    /// Not captured under any assumption on the parameters.
    Never,
    /// Captured iff every parameter in the mask is captured at the call
    /// site; `Cond(0)` is *unconditionally* captured.
    Cond(ParamMask),
}

impl Cap {
    /// Must-meet: captured only when both sides are.
    fn meet(a: Cap, b: Cap) -> Cap {
        match (a, b) {
            (Cap::Cond(x), Cap::Cond(y)) => Cap::Cond(x | y),
            _ => Cap::Never,
        }
    }

    /// Resolve against a concrete set of captured parameters.
    fn resolved(self, captured_params: ParamMask) -> bool {
        match self {
            Cap::Never => false,
            Cap::Cond(m) => m & !captured_params == 0,
        }
    }
}

/// Identifier of an abstract block (a `malloc` occurrence, an
/// address-taken-local slot, or a parameter's pointee region).
type BlockId = usize;

/// What an abstract block stands for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BlockKind {
    /// A `malloc` result or a local slot owned by this function: fresh
    /// memory, disjoint from every other non-summary block and from all
    /// parameter regions.
    Own,
    /// The memory a parameter points into: may alias other parameter
    /// regions and (via out-of-bounds arithmetic) anything else.
    Param(usize),
}

#[derive(Clone, Copy, Debug)]
struct BlockInfo {
    kind: BlockKind,
    /// Byte size when statically known (constant `malloc` argument; 8 for
    /// an address-taken local's one-word slot). `None` disables bounds
    /// checking and therefore strong updates.
    bytes: Option<u64>,
    /// Allocated under a loop: one abstract block for many dynamic blocks;
    /// field facts disabled.
    summary: bool,
}

/// Exact pointer location: `off` bytes into abstract block `block`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Loc {
    block: BlockId,
    off: u64,
}

/// Abstract value of one local variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Abs {
    Unknown,
    /// Known integer constant (constants are never captured; tracked so
    /// index expressions resolve to field offsets).
    Const(u64),
    /// Pointer with a capture condition and, when exact, a location.
    Ptr {
        cap: Cap,
        loc: Option<Loc>,
    },
}

impl Abs {
    /// Normalizing constructor: a never-captured pointer with no location
    /// carries no information.
    fn ptr(cap: Cap, loc: Option<Loc>) -> Abs {
        if cap == Cap::Never && loc.is_none() {
            Abs::Unknown
        } else {
            Abs::Ptr { cap, loc }
        }
    }

    fn cap(self) -> Cap {
        match self {
            Abs::Ptr { cap, .. } => cap,
            _ => Cap::Never,
        }
    }

    fn meet(a: Abs, b: Abs) -> Abs {
        match (a, b) {
            _ if a == b => a,
            (Abs::Ptr { cap: c1, loc: l1 }, Abs::Ptr { cap: c2, loc: l2 }) => {
                Abs::ptr(Cap::meet(c1, c2), if l1 == l2 { l1 } else { None })
            }
            _ => Abs::Unknown,
        }
    }
}

/// Flow state: variable environment plus field facts.
#[derive(Clone, Debug, PartialEq)]
struct State {
    env: HashMap<String, Abs>,
    /// (block, byte offset) → value last stored there. Absent = Unknown.
    fields: HashMap<(BlockId, u64), Abs>,
}

impl State {
    fn join(a: &State, b: &State) -> State {
        let mut env = HashMap::new();
        for (k, &va) in &a.env {
            let vb = *b.env.get(k).unwrap_or(&Abs::Unknown);
            env.insert(k.clone(), Abs::meet(va, vb));
        }
        for k in b.env.keys() {
            env.entry(k.clone()).or_insert(Abs::Unknown);
        }
        let mut fields = HashMap::new();
        for (k, &va) in &a.fields {
            if let Some(&vb) = b.fields.get(k) {
                let m = Abs::meet(va, vb);
                if m != Abs::Unknown {
                    fields.insert(*k, m);
                }
            }
        }
        State { env, fields }
    }
}

/// Per-parameter store-effect summary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ParamStores {
    /// The callee never stores through pointers derived from this
    /// parameter.
    #[default]
    No,
    /// Every store through this parameter lands at a constant offset; the
    /// value is the exclusive end (in bytes) of the written window. The
    /// caller only invalidates this argument's facts — and only when the
    /// window fits the argument block — instead of everything it knows.
    UpTo(u64),
}

/// Transactional-clone summary of one function; see the module docs.
#[derive(Clone, Debug, PartialEq)]
pub struct FnSummary {
    /// Capture condition of the return value.
    pub ret: Cap,
    /// Per-parameter store effects (`param_store_end[i]` ↔ parameter i).
    pub param_store_end: Vec<ParamStores>,
    /// The function may store through an inexact base (or performs some
    /// effect the per-parameter map cannot bound): a call kills every
    /// caller field fact.
    pub clobbers_all: bool,
}

impl FnSummary {
    /// Optimistic initial summary (top of the lattice).
    fn top(n_params: usize) -> FnSummary {
        FnSummary {
            ret: Cap::Cond(0),
            param_store_end: vec![ParamStores::No; n_params],
            clobbers_all: false,
        }
    }

    /// Fully conservative summary (bottom; used for unknown callees,
    /// arity mismatches, >32 parameters, and the round-limit valve).
    fn bottom(n_params: usize) -> FnSummary {
        FnSummary {
            ret: Cap::Never,
            param_store_end: vec![ParamStores::No; n_params],
            clobbers_all: true,
        }
    }

    fn note_param_store(&mut self, param: usize, end: u64) {
        if end > MAX_TRACKED_END {
            self.clobbers_all = true;
            return;
        }
        let e = &mut self.param_store_end[param];
        *e = match *e {
            ParamStores::No => ParamStores::UpTo(end),
            ParamStores::UpTo(prev) => ParamStores::UpTo(prev.max(end)),
        };
    }
}

/// One call site collected for the top-down parameter pass.
#[derive(Clone, Debug)]
struct CallSite {
    caller: usize,
    callee: usize,
    /// Capture condition of each argument, symbolic in the *caller's*
    /// parameters.
    args: Vec<Cap>,
}

/// Whole-program result: verdicts for the normal compilation of every
/// function and for the transactional clones, plus the summaries and the
/// resolved clone-parameter capture facts (exposed for tests and reports).
#[derive(Clone, Debug)]
pub struct InterprocResult {
    /// Verdicts for normal (non-clone) code, program-wide by site id.
    pub normal: AnalysisResult,
    /// Verdicts for the transactional clones, program-wide by site id.
    pub tx: AnalysisResult,
    /// Transactional-clone summary per function (program order).
    pub summaries: Vec<FnSummary>,
    /// Per function: parameters proven captured at *every* transactional
    /// call site (0 for functions never called transactionally).
    pub param_captured: Vec<ParamMask>,
}

// ---------------------------------------------------------------------------
// The flow pass
// ---------------------------------------------------------------------------

/// One dataflow traversal of one function body. The same engine serves the
/// bottom-up summary pass (symbolic parameters), the call-site collection
/// passes, and the final verdict passes (concrete parameters); `record`
/// gates every accumulation (verdicts, summary effects, call sites) while
/// state transfer always applies, exactly like the intraprocedural pass's
/// `while` fixpoint.
struct Pass<'a> {
    prog: &'a Program,
    fn_index: &'a HashMap<String, usize>,
    summaries: &'a [FnSummary],
    fun_idx: usize,
    assume_atomic: bool,
    /// `None`: parameters are symbolic (`Cond(1 << i)`); `Some(mask)`:
    /// parameter i is `Cond(0)` iff bit i is set, `Unknown` otherwise.
    concrete_params: Option<ParamMask>,
    blocks: Vec<BlockInfo>,
    malloc_ids: HashMap<usize, BlockId>,
    slot_ids: HashMap<String, BlockId>,
    /// Declaration-site (`Stmt` address) → slot block, so re-executing a
    /// declaration (loop fixpoint iterations) reuses its block instead of
    /// allocating a fresh one per iteration, mirroring `malloc_ids`.
    slot_decl_ids: HashMap<usize, BlockId>,
    atomic_locals: Vec<String>,
    in_atomic: u32,
    loop_depth: u32,
    record: bool,
    verdicts: Vec<Verdict>,
    summary: FnSummary,
    calls: Vec<CallSite>,
}

impl<'a> Pass<'a> {
    fn run(
        prog: &'a Program,
        fn_index: &'a HashMap<String, usize>,
        summaries: &'a [FnSummary],
        fun_idx: usize,
        assume_atomic: bool,
        concrete_params: Option<ParamMask>,
    ) -> Pass<'a> {
        let f = &prog.functions[fun_idx];
        let mut p = Pass {
            prog,
            fn_index,
            summaries,
            fun_idx,
            assume_atomic,
            concrete_params,
            blocks: Vec::new(),
            malloc_ids: HashMap::new(),
            slot_ids: HashMap::new(),
            slot_decl_ids: HashMap::new(),
            atomic_locals: Vec::new(),
            in_atomic: u32::from(assume_atomic),
            loop_depth: 0,
            record: true,
            verdicts: vec![Verdict::Outside; prog.n_sites],
            summary: FnSummary {
                ret: Cap::Cond(0),
                param_store_end: vec![ParamStores::No; f.params.len()],
                clobbers_all: false,
            },
            calls: Vec::new(),
        };
        if f.params.len() > 32 {
            p.summary = FnSummary::bottom(f.params.len());
        }
        let mut st = State {
            env: HashMap::new(),
            fields: HashMap::new(),
        };
        for (i, name) in f.params.iter().enumerate() {
            let abs = match (p.concrete_params, i < 32) {
                (None, true) => {
                    // Symbolic: parameter i's pointee is region `Param(i)`.
                    let b = p.add_block(BlockKind::Param(i), None, false);
                    Abs::ptr(Cap::Cond(1 << i), Some(Loc { block: b, off: 0 }))
                }
                (Some(mask), true) if mask & (1 << i) != 0 => {
                    let b = p.add_block(BlockKind::Param(i), None, false);
                    Abs::ptr(Cap::Cond(0), Some(Loc { block: b, off: 0 }))
                }
                (Some(_), true) => {
                    // Not captured, but stores through it still have a
                    // region identity for the fact-kill rules.
                    let b = p.add_block(BlockKind::Param(i), None, false);
                    Abs::ptr(Cap::Never, Some(Loc { block: b, off: 0 }))
                }
                (_, false) => Abs::Unknown,
            };
            st.env.insert(name.clone(), abs);
        }
        p.block_stmts(&f.body, &mut st);
        // Implicit `return 0` when the body can fall off the end (codegen
        // appends one): the summary must account for it.
        if p.record && !matches!(f.body.last(), Some(Stmt::Return(_))) {
            p.summary.ret = Cap::Never;
        }
        p
    }

    fn add_block(&mut self, kind: BlockKind, bytes: Option<u64>, summary: bool) -> BlockId {
        self.blocks.push(BlockInfo {
            kind,
            bytes,
            summary,
        });
        self.blocks.len() - 1
    }

    fn transactional(&self) -> bool {
        self.assume_atomic || self.in_atomic > 0
    }

    /// Is this capture condition satisfied for verdict purposes? Symbolic
    /// passes never record verdicts that depend on open conditions.
    fn cap_holds(&self, cap: Cap) -> bool {
        match self.concrete_params {
            Some(mask) => cap.resolved(mask),
            None => cap == Cap::Cond(0),
        }
    }

    fn verdict_for(&self, base: Abs) -> Verdict {
        if !self.transactional() {
            Verdict::Outside
        } else if self.cap_holds(base.cap()) {
            Verdict::Elide
        } else {
            Verdict::Barrier
        }
    }

    fn set_verdict(&mut self, site: usize, v: Verdict) {
        if self.record {
            self.verdicts[site] = v;
        }
    }

    /// A store landed somewhere we cannot bound: every field fact dies,
    /// and (when recording) the summary escalates.
    fn clobber_all(&mut self, st: &mut State) {
        st.fields.clear();
        if self.record {
            self.summary.clobbers_all = true;
        }
    }

    /// Apply one store of `val` through `base[idx]` to the field facts and
    /// the summary. `idx` is in words (8 bytes), mirroring the VM's
    /// effective-address computation.
    fn store_effect(&mut self, st: &mut State, base: Abs, idx: Abs, val: Abs) {
        let (loc, _cap) = match base {
            Abs::Ptr { loc: Some(l), cap } => (l, cap),
            // Exactness lost: the target may be anything.
            _ => return self.clobber_all(st),
        };
        let off = match idx {
            Abs::Const(i) => match i
                .checked_mul(8)
                .and_then(|b| b.checked_add(loc.off))
                .filter(|end| *end <= MAX_TRACKED_END)
            {
                Some(o) => o,
                None => return self.clobber_all(st),
            },
            _ => return self.clobber_all(st),
        };
        if off % 8 != 0 {
            // Sub-word offsets overlap neighbouring facts in the
            // word-granular memory; refuse to reason about them.
            return self.clobber_all(st);
        }
        let info = self.blocks[loc.block];
        match info.kind {
            BlockKind::Own => {
                let in_bounds = info.bytes.is_some_and(|b| off + 8 <= b);
                if !in_bounds || info.summary {
                    // Out-of-bounds arithmetic can reach any block; a
                    // summary block stands for many dynamic blocks.
                    return self.clobber_all(st);
                }
                st.fields.insert((loc.block, off), val);
            }
            BlockKind::Param(i) => {
                // A parameter region may alias other parameter regions
                // (the caller can pass one block twice) and — via
                // out-of-bounds arithmetic — own blocks too; only this
                // parameter's *other offsets* are provably disjoint.
                let keep_block = loc.block;
                st.fields.retain(|(b, o), _| *b == keep_block && *o != off);
                st.fields.insert((keep_block, off), val);
                if self.record {
                    self.summary.note_param_store(i, off + 8);
                }
            }
        }
    }

    /// Value of `base[idx]` from the field facts, if exact.
    fn load_fact(&self, st: &State, base: Abs, idx: Abs) -> Abs {
        let Abs::Ptr { loc: Some(l), .. } = base else {
            return Abs::Unknown;
        };
        let Abs::Const(i) = idx else {
            return Abs::Unknown;
        };
        let Some(off) = i.checked_mul(8).and_then(|b| b.checked_add(l.off)) else {
            return Abs::Unknown;
        };
        let info = self.blocks[l.block];
        if info.summary || off % 8 != 0 {
            return Abs::Unknown;
        }
        if info.kind == BlockKind::Own && info.bytes.is_none_or(|b| off + 8 > b) {
            return Abs::Unknown;
        }
        *st.fields.get(&(l.block, off)).unwrap_or(&Abs::Unknown)
    }

    /// Transfer of a call: argument evaluation happens in [`Pass::eval`];
    /// this applies the callee summary to the state and returns the
    /// result's abstract value.
    fn call_effect(&mut self, st: &mut State, name: &str, args: &[Abs]) -> Abs {
        let known = self.fn_index.get(name).copied();
        let exact = known
            .filter(|&i| self.prog.functions[i].params.len() == args.len() && args.len() <= 32);
        let summary = match exact {
            Some(i) => self.summaries[i].clone(),
            None => FnSummary::bottom(args.len()),
        };
        let in_tx = self.transactional();
        if !in_tx {
            // Outside any transaction nothing is captured and no facts
            // exist; the only effect worth modelling is fact-clearing for
            // symmetry (there are no facts to clear).
            st.fields.clear();
            return Abs::Unknown;
        }
        if self.record {
            if let Some(callee) = exact {
                self.calls.push(CallSite {
                    caller: self.fun_idx,
                    callee,
                    args: args.iter().map(|a| a.cap()).collect(),
                });
            } else if let Some(callee) = known {
                // Arity-mismatched (or >32-argument) call to a *known*
                // function: the VM still executes it, zero-padding missing
                // frame registers, so the call-graph edge must exist for
                // phase 3. We do not model the padded frame, so the edge
                // marks every callee parameter not-captured (`Cap::Never`
                // never resolves, clearing the whole `param_captured`
                // mask) — the callee clone keeps all its barriers.
                self.calls.push(CallSite {
                    caller: self.fun_idx,
                    callee,
                    args: vec![Cap::Never; self.prog.functions[callee].params.len()],
                });
            }
        }
        // Field-fact invalidation from the callee's store effects.
        if summary.clobbers_all {
            self.clobber_all(st);
        } else {
            for (j, stores) in summary.param_store_end.iter().enumerate() {
                let ParamStores::UpTo(end) = *stores else {
                    continue;
                };
                match args[j] {
                    Abs::Ptr { loc: Some(l), .. } => {
                        let info = self.blocks[l.block];
                        match info.kind {
                            BlockKind::Own
                                if !info.summary
                                    && info
                                        .bytes
                                        .is_some_and(|b| l.off.saturating_add(end) <= b) =>
                            {
                                // Bounded store into a known block: only
                                // its facts die.
                                st.fields.retain(|(b, _), _| *b != l.block);
                            }
                            BlockKind::Param(i) => {
                                // Propagate the effect to our own caller
                                // and kill conservatively (aliasing).
                                if self.record {
                                    self.summary.note_param_store(i, l.off.saturating_add(end));
                                }
                                st.fields.clear();
                            }
                            _ => self.clobber_all(st),
                        }
                    }
                    _ => self.clobber_all(st),
                }
            }
        }
        // Result: substitute argument conditions into the return mask.
        match summary.ret {
            Cap::Never => Abs::Unknown,
            Cap::Cond(m) => {
                let mut cap = Cap::Cond(0);
                for (j, arg) in args.iter().enumerate() {
                    if m & (1 << j) != 0 {
                        cap = Cap::meet(cap, arg.cap());
                    }
                }
                Abs::ptr(cap, None)
            }
        }
    }

    fn eval(&mut self, e: &Expr, st: &mut State) -> Abs {
        match e {
            Expr::Int(v) => Abs::Const(*v),
            Expr::Var(x) => *st.env.get(x).unwrap_or(&Abs::Unknown),
            Expr::Malloc(size) => {
                let sz = self.eval(size, st);
                if self.transactional() {
                    let bytes = match sz {
                        Abs::Const(b) if b <= MAX_TRACKED_END => Some(b),
                        _ => None,
                    };
                    let key = e as *const Expr as usize;
                    let summary = self.loop_depth > 0;
                    let block = match self.malloc_ids.get(&key) {
                        Some(&b) => b,
                        None => {
                            let b = self.add_block(BlockKind::Own, bytes, summary);
                            self.malloc_ids.insert(key, b);
                            b
                        }
                    };
                    Abs::ptr(Cap::Cond(0), Some(Loc { block, off: 0 }))
                } else {
                    Abs::Unknown
                }
            }
            Expr::AddrOf(x) => {
                let cap = if self.atomic_locals.iter().any(|l| l == x) {
                    Cap::Cond(0)
                } else {
                    Cap::Never
                };
                match self.slot_ids.get(x) {
                    Some(&block) => Abs::ptr(cap, Some(Loc { block, off: 0 })),
                    None => Abs::ptr(cap, None),
                }
            }
            Expr::Load { base, idx, site } => {
                let b = self.eval(base, st);
                let i = self.eval(idx, st);
                let v = self.verdict_for(b);
                self.set_verdict(*site, v);
                if self.transactional() {
                    self.load_fact(st, b, i)
                } else {
                    Abs::Unknown
                }
            }
            Expr::Unary(_, e) => {
                self.eval(e, st);
                Abs::Unknown
            }
            Expr::Binary(op, a, b) => {
                let va = self.eval(a, st);
                let vb = self.eval(b, st);
                match op {
                    // Pointer arithmetic keeps capture (the paper's field
                    // accesses stay within the allocated block); constant
                    // offsets keep the exact location too.
                    BinOp::Add | BinOp::Sub => match (va, vb) {
                        (Abs::Const(x), Abs::Const(y)) => Abs::Const(if *op == BinOp::Add {
                            x.wrapping_add(y)
                        } else {
                            x.wrapping_sub(y)
                        }),
                        (Abs::Ptr { cap, loc }, other) | (other, Abs::Ptr { cap, loc })
                            if !matches!(other, Abs::Ptr { .. }) =>
                        {
                            let k = match other {
                                Abs::Const(k) => Some(k),
                                _ => None,
                            };
                            // Only `ptr + k` / `ptr - k` keep the exact
                            // location (`k - ptr` does not address into
                            // the block).
                            let ptr_on_left = matches!(&va, Abs::Ptr { .. });
                            let new_loc = match (loc, k) {
                                (Some(l), Some(k)) if ptr_on_left || *op == BinOp::Add => {
                                    let off = if *op == BinOp::Add {
                                        l.off.checked_add(k)
                                    } else {
                                        l.off.checked_sub(k)
                                    };
                                    off.map(|off| Loc {
                                        block: l.block,
                                        off,
                                    })
                                }
                                _ => None,
                            };
                            Abs::ptr(cap, new_loc)
                        }
                        (Abs::Ptr { cap: c1, loc: _ }, Abs::Ptr { cap: c2, loc: _ }) => {
                            // Either side captured keeps capture, exactly
                            // like the intraprocedural rule; prefer the
                            // stronger (or the left) condition.
                            let cap = match (c1, c2) {
                                (Cap::Cond(0), _) | (_, Cap::Cond(0)) => Cap::Cond(0),
                                (Cap::Never, c) | (c, Cap::Never) => c,
                                (c, _) => c,
                            };
                            Abs::ptr(cap, None)
                        }
                        _ => Abs::Unknown,
                    },
                    BinOp::Mul => match (va, vb) {
                        (Abs::Const(x), Abs::Const(y)) => Abs::Const(x.wrapping_mul(y)),
                        _ => Abs::Unknown,
                    },
                    _ => Abs::Unknown,
                }
            }
            Expr::Call(name, args) => {
                let arg_abs: Vec<Abs> = args.iter().map(|a| self.eval(a, st)).collect();
                let name = name.clone();
                self.call_effect(st, &name, &arg_abs)
            }
        }
    }

    fn block_stmts(&mut self, body: &[Stmt], st: &mut State) {
        for s in body {
            match s {
                Stmt::VarDecl(x, init) => {
                    // Membership is all `AddrOf` checks, so dedupe on push:
                    // loop-fixpoint re-executions would otherwise grow the
                    // vec by one duplicate per iteration.
                    if self.transactional() && !self.atomic_locals.iter().any(|l| l == x) {
                        self.atomic_locals.push(x.clone());
                    }
                    let v = match init {
                        Some(e) => self.eval(e, st),
                        None => {
                            // Address-taken locals always decay to
                            // initializer-less declarations (the desugar
                            // pass splits `var x = e` into decl + store),
                            // so every one of them passes through here:
                            // give it a one-word slot block per
                            // declaration site (under a loop it is a
                            // summary block). Plain register locals
                            // harmlessly get an unused slot id.
                            self.register_slot(s, x);
                            Abs::Const(0)
                        }
                    };
                    st.env.insert(x.clone(), v);
                }
                Stmt::Assign(x, e) => {
                    let v = self.eval(e, st);
                    st.env.insert(x.clone(), v);
                }
                Stmt::Store {
                    base,
                    idx,
                    val,
                    site,
                } => {
                    let b = self.eval(base, st);
                    let i = self.eval(idx, st);
                    let v = self.eval(val, st);
                    let verdict = self.verdict_for(b);
                    self.set_verdict(*site, verdict);
                    if self.transactional() {
                        self.store_effect(st, b, i, v);
                    }
                }
                Stmt::If(c, t, e) => {
                    self.eval(c, st);
                    let mut st_t = st.clone();
                    let mut st_e = st.clone();
                    self.block_stmts(t, &mut st_t);
                    self.block_stmts(e, &mut st_e);
                    *st = State::join(&st_t, &st_e);
                }
                Stmt::While(c, b) => {
                    // Fixpoint without recording, then one recording pass
                    // over the stable state (verdicts, summary effects and
                    // call records must hold on every iteration). Run to
                    // convergence — recording from a non-fixed-point state
                    // would let a copy chain longer than the iteration
                    // count smuggle a stale Captured fact past the join —
                    // with the shared defensive cap degrading to bottom
                    // (see `crate::MAX_LOOP_FIXPOINT_ITERS`).
                    let record = self.record;
                    self.record = false;
                    self.loop_depth += 1;
                    let mut converged = false;
                    for _ in 0..crate::MAX_LOOP_FIXPOINT_ITERS {
                        self.eval(c, st);
                        let mut st_b = st.clone();
                        self.block_stmts(b, &mut st_b);
                        let joined = State::join(st, &st_b);
                        if joined == *st {
                            converged = true;
                            break;
                        }
                        *st = joined;
                    }
                    if !converged {
                        debug_assert!(false, "loop fixpoint failed to converge");
                        for v in st.env.values_mut() {
                            *v = Abs::Unknown;
                        }
                        st.fields.clear();
                    }
                    self.record = record;
                    self.eval(c, st);
                    let mut st_b = st.clone();
                    self.block_stmts(b, &mut st_b);
                    *st = State::join(st, &st_b);
                    self.loop_depth -= 1;
                }
                Stmt::Return(e) => {
                    let v = self.eval(e, st);
                    if self.record {
                        self.summary.ret = Cap::meet(self.summary.ret, v.cap());
                    }
                }
                Stmt::Free(e) => {
                    // Use-after-free is UB in the mini-language (module
                    // docs); `free` imposes no transfer obligations, like
                    // the intraprocedural pass.
                    self.eval(e, st);
                }
                Stmt::ExprStmt(e) => {
                    self.eval(e, st);
                }
                Stmt::Atomic(b) => {
                    let saved_locals = self.atomic_locals.len();
                    self.in_atomic += 1;
                    self.block_stmts(b, st);
                    self.in_atomic -= 1;
                    self.atomic_locals.truncate(saved_locals);
                    if !self.transactional() {
                        // Commit: captured memory is published; every
                        // capture fact and field fact dies.
                        for v in st.env.values_mut() {
                            *v = Abs::Unknown;
                        }
                        st.fields.clear();
                    }
                }
            }
        }
    }

    /// Register the slot block for an address-taken local at declaration.
    /// Blocks are cached by declaration-site identity (as `malloc_ids`
    /// caches malloc blocks) so loop-fixpoint re-executions reuse the same
    /// block; a declaration under a loop is a summary block from creation
    /// (`block_stmts` on a loop body only runs with `loop_depth > 0`).
    fn register_slot(&mut self, decl: &Stmt, name: &str) {
        let key = decl as *const Stmt as usize;
        let b = match self.slot_decl_ids.get(&key) {
            Some(&b) => b,
            None => {
                let summary = self.loop_depth > 0;
                let b = self.add_block(BlockKind::Own, Some(8), summary);
                self.slot_decl_ids.insert(key, b);
                b
            }
        };
        self.slot_ids.insert(name.to_string(), b);
    }
}

// ---------------------------------------------------------------------------
// Whole-program driver
// ---------------------------------------------------------------------------

fn full_mask(n: usize) -> ParamMask {
    if n >= 32 {
        u32::MAX
    } else {
        (1u32 << n) - 1
    }
}

/// Analyze a whole (already address-taken-desugared) program. See the
/// module docs for the phase structure: bottom-up summaries → call-site
/// collection → top-down parameter capture → concrete verdict passes.
pub fn analyze_program(prog: &Program) -> InterprocResult {
    let n = prog.functions.len();
    let fn_index: HashMap<String, usize> = prog
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.clone(), i))
        .collect();

    // Phase 1: bottom-up transactional-clone summaries to a fixed point.
    let mut summaries: Vec<FnSummary> = prog
        .functions
        .iter()
        .map(|f| FnSummary::top(f.params.len()))
        .collect();
    // The round that observes no change ran every function's symbolic
    // clone pass against the *final* summaries, so its call records are
    // exactly what phase 2b needs — keep them instead of re-running the
    // most expensive sweep.
    let mut clone_calls: Vec<CallSite> = Vec::new();
    let mut converged = false;
    for _ in 0..MAX_SUMMARY_ROUNDS {
        let mut changed = false;
        let mut round_calls: Vec<CallSite> = Vec::new();
        for i in 0..n {
            let mut p = Pass::run(prog, &fn_index, &summaries, i, true, None);
            round_calls.append(&mut p.calls);
            if p.summary != summaries[i] {
                summaries[i] = p.summary;
                changed = true;
            }
        }
        if !changed {
            clone_calls = round_calls;
            converged = true;
            break;
        }
    }
    if !converged {
        // Safety valve: degrade to bottom rather than trust an unstable
        // optimistic summary; the call records must then be re-collected
        // under the degraded summaries.
        summaries = prog
            .functions
            .iter()
            .map(|f| FnSummary::bottom(f.params.len()))
            .collect();
        clone_calls.clear();
        for i in 0..n {
            let mut p = Pass::run(prog, &fn_index, &summaries, i, true, None);
            clone_calls.append(&mut p.calls);
        }
    }

    // Phase 2a: normal-context passes — they produce the normal verdicts
    // and collect the transactional call sites inside atomic blocks
    // (argument conditions are concrete: normal parameters are never
    // captured).
    let mut normal = vec![Verdict::Outside; prog.n_sites];
    let mut seed_calls: Vec<CallSite> = Vec::new();
    for i in 0..n {
        let p = Pass::run(prog, &fn_index, &summaries, i, false, Some(0));
        merge_verdicts(&mut normal, &p.verdicts);
        seed_calls.extend(p.calls);
    }

    // Phase 2b happened for free: `clone_calls` (the clone→clone call
    // sites, symbolic in the caller's parameters) were collected by the
    // converged summary round above.

    // Phase 3: which clones can run at all, and with which parameters
    // provably captured at every transactional call site.
    let mut reachable = vec![false; n];
    let mut work: Vec<usize> = seed_calls.iter().map(|c| c.callee).collect();
    while let Some(f) = work.pop() {
        if std::mem::replace(&mut reachable[f], true) {
            continue;
        }
        work.extend(
            clone_calls
                .iter()
                .filter(|c| c.caller == f)
                .map(|c| c.callee),
        );
    }
    let mut param_captured: Vec<ParamMask> = (0..n)
        .map(|i| {
            if reachable[i] {
                full_mask(prog.functions[i].params.len())
            } else {
                0
            }
        })
        .collect();
    // Seed calls resolve immediately (caller context has no captured
    // parameters).
    for c in &seed_calls {
        for (j, cap) in c.args.iter().enumerate() {
            if j < 32 && !cap.resolved(0) {
                param_captured[c.callee] &= !(1 << j);
            }
        }
    }
    // Clone→clone calls resolve against the caller's (shrinking) facts.
    loop {
        let mut changed = false;
        for c in clone_calls.iter().filter(|c| reachable[c.caller]) {
            let caller_mask = param_captured[c.caller];
            for (j, cap) in c.args.iter().enumerate() {
                if j < 32 && !cap.resolved(caller_mask) {
                    let bit = 1u32 << j;
                    if param_captured[c.callee] & bit != 0 {
                        param_captured[c.callee] &= !bit;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Phase 4: concrete verdict passes for the transactional clones.
    let mut tx = vec![Verdict::Outside; prog.n_sites];
    for (i, &mask) in param_captured.iter().enumerate() {
        let p = Pass::run(prog, &fn_index, &summaries, i, true, Some(mask));
        merge_verdicts(&mut tx, &p.verdicts);
    }

    let result = InterprocResult {
        normal: AnalysisResult { verdicts: normal },
        tx: AnalysisResult { verdicts: tx },
        summaries,
        param_captured,
    };
    // The structural guarantee, checked mechanically on every debug-build
    // analysis; release callers (the `expt elision` gate) re-run it via
    // `check_superset`.
    #[cfg(debug_assertions)]
    check_superset(prog, &result).expect("interprocedural superset property violated");
    result
}

/// Verify that the interprocedural result elides a superset of the
/// intraprocedural pass's sites on the same (desugared, non-inlined)
/// program, in both compilation contexts. Returns a description of the
/// first lost site on failure. The `expt elision` experiment runs this as
/// a release-mode gate; `analyze_program` asserts it in debug builds.
pub fn check_superset(prog: &Program, result: &InterprocResult) -> Result<(), String> {
    for f in &prog.functions {
        for (assume_atomic, ours) in [
            (false, &result.normal.verdicts),
            (true, &result.tx.verdicts),
        ] {
            let intra = crate::capture::analyze_function(f, prog.n_sites, assume_atomic);
            for (site, v) in intra.verdicts.iter().enumerate() {
                if *v == Verdict::Elide && ours[site] != Verdict::Elide {
                    return Err(format!(
                        "interprocedural pass lost an intraprocedural elision \
                         (fn {}, site {site}, assume_atomic={assume_atomic})",
                        f.name
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::desugar_address_taken;
    use crate::parser::parse;

    fn analyze(src: &str) -> (Program, InterprocResult) {
        let mut p = parse(src).unwrap();
        desugar_address_taken(&mut p);
        let r = analyze_program(&p);
        (p, r)
    }

    /// Elide counts over (normal, tx) verdict vectors.
    fn elided(r: &InterprocResult) -> (usize, usize) {
        (r.normal.elided(), r.tx.elided())
    }

    #[test]
    fn param_store_elided_without_inlining() {
        // The helper is structurally un-inlinable (early return), so the
        // intraprocedural pass keeps its store a barrier in every
        // pipeline; the summary pass proves the parameter captured at
        // every transactional call site.
        let src = "fn init(p, v) { if (v > 100) { return 0; } p[0] = v; return 1; }\n\
                   fn main(s) { atomic { var q = malloc(16); var z = init(q, 7); } return 0; }";
        let (p, r) = analyze(src);
        let intra = crate::capture::analyze_program(&p);
        assert_eq!(intra.elided(), 0, "intraprocedural pass cannot see it");
        let (_, tx_elided) = elided(&r);
        assert_eq!(tx_elided, 1, "p[0] = v in init's clone");
        // init's parameter p (bit 0) is captured at its only tx call site.
        let init_idx = p.function_index("init").unwrap();
        assert_eq!(r.param_captured[init_idx] & 0b01, 0b01);
    }

    #[test]
    fn returns_captured_flows_to_caller() {
        let src = "fn mk() { var p = malloc(16); return p; }\n\
                   fn main(s) { atomic { var q = mk(); q[0] = 1; s[0] = q; } return 0; }";
        let (p, r) = analyze(src);
        let mk = p.function_index("mk").unwrap();
        assert_eq!(r.summaries[mk].ret, Cap::Cond(0), "mk returns captured");
        // q[0] = 1 elides in main's normal code; s[0] = q keeps a barrier.
        assert_eq!(r.normal.elided(), 1);
        assert_eq!(r.normal.barriers(), 1);
    }

    #[test]
    fn param_to_return_propagation_composes() {
        let src = "fn id(p) { return p; }\n\
                   fn mk() { return id(malloc(8)); }\n\
                   fn main(s) { atomic { var q = mk(); q[0] = 5; } return 0; }";
        let (p, r) = analyze(src);
        let id = p.function_index("id").unwrap();
        let mk = p.function_index("mk").unwrap();
        assert_eq!(r.summaries[id].ret, Cap::Cond(1), "id returns its arg");
        assert_eq!(r.summaries[mk].ret, Cap::Cond(0), "composition resolves");
        assert_eq!(r.normal.elided(), 1, "q[0] = 5");
    }

    #[test]
    fn mixed_call_sites_keep_the_barrier() {
        // One caller passes captured memory, another passes the shared
        // parameter: the meet over call sites must keep init's store a
        // barrier.
        let src = "fn init(p, v) { p[0] = v; if (v > 100) { return 0; } return 1; }\n\
                   fn a() { atomic { var q = malloc(8); var z = init(q, 1); } return 0; }\n\
                   fn b(s) { atomic { var z = init(s, 2); } return 0; }";
        let (p, r) = analyze(src);
        let init = p.function_index("init").unwrap();
        assert_eq!(r.param_captured[init] & 0b01, 0, "meet kills the fact");
        assert_eq!(r.tx.elided(), 0);
    }

    #[test]
    fn field_facts_recover_laundered_capture() {
        // The pattern tests/cross_check.rs proves the intraprocedural pass
        // loses: a captured pointer stored into a captured cell and loaded
        // back. Field awareness keeps the fact.
        let src = "fn f(s) {
            atomic {
                var cell = malloc(8);
                var p = malloc(16);
                cell[0] = p;
                var q = cell[0];
                q[0] = 7;
            }
            return 0;
        }";
        let (p, r) = analyze(src);
        let intra = crate::capture::analyze_program(&p);
        // cell[0]=p, cell[0] load, q[0]=7 all elide.
        assert_eq!(r.normal.elided(), 3);
        assert_eq!(intra.elided(), 2, "intraproc loses the load's value");
    }

    #[test]
    fn publish_kills_field_facts_but_not_capture() {
        // Storing through the *shared* base may alias anything: the field
        // fact about cell[0] must die, so q is unknown — but direct uses
        // of p stay elided (the paper's publication rule).
        let src = "fn f(s) {
            atomic {
                var cell = malloc(8);
                var p = malloc(16);
                cell[0] = p;
                s[0] = 1;
                var q = cell[0];
                q[0] = 7;
            }
            return 0;
        }";
        let (_, r) = analyze(src);
        // Elided: cell[0]=p, cell[0] load (cell itself is still exact?
        // no — the unknown store killed the *fact*, the load's own verdict
        // is on `cell` which stays captured). q[0]=7 must be a barrier.
        let v = &r.normal;
        assert_eq!(v.barriers(), 2, "s[0]=1 and q[0]=7");
        assert_eq!(v.elided(), 2, "cell[0] store + load");
    }

    #[test]
    fn loop_allocated_blocks_are_summarized() {
        // One abstract block stands for many dynamic blocks: a fact
        // written through this iteration's pointer must not justify a load
        // through last iteration's.
        let src = "fn f(s, n) {
            atomic {
                var old = malloc(8);
                var i = 0;
                while (i < n) {
                    var fresh = malloc(8);
                    fresh[0] = fresh;
                    var lx = old[0];
                    lx[0] = 3;
                    old = fresh;
                    i = i + 1;
                }
            }
            return 0;
        }";
        let (_, r) = analyze(src);
        // lx flows from a load whose fact must be dead (summary block):
        // lx[0] = 3 must keep its barrier.
        assert!(r.normal.barriers() >= 1);
        // fresh[0] = fresh still elides: capture is per-value, not a fact.
        assert!(r.normal.elided() >= 1);
    }

    #[test]
    fn transitive_helper_chain() {
        let src = "fn leaf(p) { p[1] = 9; if (p[1] > 100) { return 0; } return 1; }\n\
                   fn mid(q) { var z = leaf(q); if (z > 100) { return 0; } return z; }\n\
                   fn main() { atomic { var b = malloc(16); var z = mid(b); } return 0; }";
        let (p, r) = analyze(src);
        let leaf = p.function_index("leaf").unwrap();
        assert_eq!(r.param_captured[leaf] & 0b01, 0b01, "captured through mid");
        // leaf's clone: p[1]=9 elided, p[1] read elided.
        assert_eq!(r.tx.elided(), 2);
    }

    #[test]
    fn commit_kills_summary_facts() {
        let src = "fn mk() { var p = malloc(8); return p; }\n\
                   fn f(s) { var q = 0; atomic { q = mk(); q[0] = 1; } atomic { q[1] = 2; } return 0; }";
        let (_, r) = analyze(src);
        assert_eq!(r.normal.elided(), 1, "first write only");
        assert_eq!(r.normal.barriers(), 1, "q is published after commit");
    }

    #[test]
    fn callee_store_invalidates_only_the_argument_block() {
        // init stores through its parameter at constant offsets; the
        // caller's facts about *other* blocks survive the call.
        let src = "fn init(p) { p[0] = 0; if (p[0] > 100) { return 0; } return 1; }\n\
                   fn f(s) {
                       atomic {
                           var a = malloc(8);
                           var b = malloc(16);
                           a[0] = b;
                           var z = init(b);
                           var c = a[0];
                           c[0] = 4;
                       }
                       return 0;
                   }";
        let (_, r) = analyze(src);
        // a[0]=b, init's stores (clone), a[0] load, c[0]=4 all elidable;
        // fact (a,0) survives the bounded call on b.
        assert_eq!(r.normal.elided(), 3, "a[0]=b, a[0] read, c[0]=4");
    }

    #[test]
    fn unbounded_callee_store_clobbers_caller_facts() {
        // mangle stores through its parameter at a *non-constant* offset:
        // the caller must drop every fact.
        let src = "fn mangle(p, i) { p[i] = 1; if (i > 100) { return 0; } return 1; }\n\
                   fn f(s) {
                       atomic {
                           var a = malloc(8);
                           var b = malloc(64);
                           a[0] = b;
                           var z = mangle(b, s[0]);
                           var c = a[0];
                           c[0] = 4;
                       }
                       return 0;
                   }";
        let (p, r) = analyze(src);
        let mangle = p.function_index("mangle").unwrap();
        assert!(r.summaries[mangle].clobbers_all);
        // c came through a dead fact: its store keeps the barrier.
        // Elided: a[0]=b, a[0] read... the read's *verdict* is on `a`
        // (captured) so it elides; only c[0]=4 must stay a barrier.
        let f_idx = p.function_index("f").unwrap();
        let _ = f_idx;
        assert!(r.normal.barriers() >= 2, "s[0] read + c[0]=4");
    }

    #[test]
    fn stack_slot_facts_flow_through_address_taken_locals() {
        // Fig. 1(a) with a twist: the captured node pointer parks in an
        // address-taken local and is read back — field awareness on the
        // slot block keeps the capture.
        let src = "fn f(s) {
            atomic {
                var it;
                var a = &it;
                var p = malloc(16);
                a[0] = p;
                var q = a[0];
                q[0] = 5;
            }
            return 0;
        }";
        let (_, r) = analyze(src);
        // a[0] = p stores into the captured slot; the load's fact returns
        // p; all three sites (slot store, slot load, q[0]=5) elide. The
        // intraprocedural pass only gets the first two (loads forget).
        assert_eq!(r.normal.elided(), 3);
        assert_eq!(r.normal.barriers(), 0);
    }

    #[test]
    fn dead_clones_get_no_optimistic_params() {
        // helper is never called from a transactional context: its clone
        // parameters must resolve to not-captured, not to the optimistic
        // top.
        let src = "fn helper(p) { p[0] = 1; if (p[0] > 100) { return 0; } return 1; }\n\
                   fn main(s) { var z = helper(s); return z; }";
        let (p, r) = analyze(src);
        let h = p.function_index("helper").unwrap();
        assert_eq!(r.param_captured[h], 0);
        assert_eq!(r.tx.elided(), 0);
    }

    #[test]
    fn recursion_converges_soundly() {
        let src = "fn build(n) {
            var p = malloc(16);
            p[0] = n;
            if (n < 1) { return p; }
            var rest = build(n - 1);
            p[1] = rest;
            return p;
        }\n\
        fn main(s) { atomic { var list = build(3); list[0] = 9; } return 0; }";
        let (p, r) = analyze(src);
        let build = p.function_index("build").unwrap();
        assert_eq!(r.summaries[build].ret, Cap::Cond(0), "always fresh");
        // list[0] = 9 elides in main; build's clone elides its own inits.
        assert_eq!(r.normal.elided(), 1);
        assert!(r.tx.elided() >= 3, "p[0], p[0] read?, p[1] in the clone");
    }

    #[test]
    fn long_copy_chain_in_loop_converges_soundly() {
        // Mirror of the intraprocedural regression: shared-ness needs 12
        // loop iterations to reach v1, past the historic 8-iteration cap.
        let mut src = String::from("fn f(s, n) { atomic { var a = malloc(8);\n");
        for k in 1..=12 {
            src.push_str(&format!("var v{k} = a;\n"));
        }
        src.push_str("var i = 0;\nwhile (i < n) {\n  v1[0] = 1;\n");
        for k in 1..12 {
            src.push_str(&format!("  v{k} = v{};\n", k + 1));
        }
        src.push_str("  v12 = s;\n  i = i + 1;\n} } return 0; }");
        let (_, r) = analyze(&src);
        assert_eq!(r.normal.elided(), 0, "v1 is shared after 12 iterations");
        assert_eq!(r.normal.barriers(), 1);
    }

    #[test]
    fn arity_mismatched_call_clears_param_capture() {
        // The parser, codegen and VM all accept arity-mismatched calls to
        // known functions (extra arguments land in scratch registers,
        // missing ones are zero-padded), so the `g(s, 0)` edge is real: it
        // passes the *shared* parameter, and the meet over call sites must
        // keep g's stores barriers even though `g(q)` passes captured
        // memory. Regression: the edge used to be silently dropped,
        // leaving `param_captured[g]` optimistic — an unsound elision.
        let src = "fn g(p) { p[0] = 1; if (p[0] > 100) { return 0; } return 1; }\n\
                   fn main(s) { atomic { var q = malloc(8); var z = g(q); var w = g(s, 0); } return 0; }";
        let (p, r) = analyze(src);
        let g = p.function_index("g").unwrap();
        assert_eq!(r.param_captured[g], 0, "mismatched edge clears the mask");
        assert_eq!(r.tx.elided(), 0, "g's clone keeps its barriers");
    }

    #[test]
    fn arity_mismatched_clone_to_clone_edge_is_recorded() {
        // The mismatched call sits inside a helper clone (a clone→clone
        // edge, phase 2b), not in an atomic seed: mid's clone forwards the
        // shared pointer to g with an extra argument. The edge must still
        // shrink `param_captured[g]` past the exact captured call `g(a)`.
        let src = "fn g(p) { p[0] = 1; if (p[0] > 100) { return 0; } return 1; }\n\
                   fn mid(q) { var z = g(q, 0); if (z > 100) { return 0; } return z; }\n\
                   fn main(s) { atomic { var a = malloc(8); var z1 = g(a); var z2 = mid(s); } return 0; }";
        let (p, r) = analyze(src);
        let g = p.function_index("g").unwrap();
        assert_eq!(r.param_captured[g], 0, "clone edge clears the mask");
        assert_eq!(r.tx.elided(), 0, "g's clone keeps its barriers");
    }

    #[test]
    fn superset_of_intraprocedural_on_every_program() {
        // The debug assertion inside analyze_program already enforces
        // this; exercise it across the corpus of shapes above plus a few
        // adversarial ones.
        for src in [
            "fn f(s) { atomic { var p = malloc(16); if (s[0]) { p = s; } else { } p[0] = 1; } return 0; }",
            "fn f(s, n) { atomic { var p = malloc(16); var i = 0; while (i < n) { p[0] = i; p = s; i = i + 1; } } return 0; }",
            "fn g(a, b) { if (a[0] < b) { return a; } return g(a, b - 1); }\n\
             fn f(s) { atomic { var p = malloc(8); p[0] = 0; var q = g(p, 3); q[0] = 2; } return 0; }",
            "fn f(s) { atomic { var it; var q = &it; q[0] = s[0]; var z = q[0]; s[1] = z; } return 0; }",
        ] {
            let (_, _) = analyze(src);
        }
    }
}
