//! `txcc` — a miniature STM compiler demonstrating the paper's §3.2
//! *compiler capture analysis* for real.
//!
//! The paper's second technique removes barriers at compile time: an
//! intraprocedural, flow-sensitive pointer analysis (helped by function
//! inlining) proves that a pointer must target memory allocated inside the
//! current transaction, so dereferences need no STM barrier at all — no
//! runtime check cost, unlike the runtime techniques.
//!
//! This crate implements that pipeline for a small C-like transaction
//! language ("TL"):
//!
//! ```text
//! fn worker(shared) {
//!     var i = 0;
//!     while (i < 10) {
//!         atomic {
//!             var p = malloc(16);      // captured by this transaction
//!             p[0] = i;                // elided: p provably captured
//!             p[1] = shared[0];        // read barrier: shared is unknown
//!             shared[0] = p[0] + 1;    // write barrier: shared memory
//!         }
//!         i = i + 1;
//!     }
//!     return i;
//! }
//! ```
//!
//! Pipeline: [`parse`] → [`inline::inline_program`] →
//! [`capture::analyze_program`] → [`codegen::compile`] → [`vm`] execution
//! against the real `stm` runtime. Function frames' address-taken locals
//! live on the simulated per-thread stack, so a local declared inside an
//! `atomic` block is transaction-local *exactly* as in the paper's Figure 3
//! — the static verdicts can be cross-checked against the runtime capture
//! analysis (see `tests/cross_check.rs`).

#![warn(missing_docs)]

/// Defensive iteration cap for the per-`while` dataflow fixpoints in both
/// capture analyses. The joined state only descends in a finite lattice
/// (the variable set is fixed after one pass, field-fact keys only shrink
/// under join), so convergence is guaranteed long before this; if a bug
/// ever breaks monotonicity, the analyses degrade the state to Unknown —
/// conservative, never unsound — instead of recording verdicts from an
/// unstable state.
pub const MAX_LOOP_FIXPOINT_ITERS: usize = 1024;

pub mod ast;
pub mod capture;
pub mod codegen;
pub mod inline;
pub mod interproc;
mod lexer;
mod parser;
pub mod vm;

pub use ast::{BinOp, Expr, Function, Program, Stmt, UnOp};
pub use capture::{analyze_program, AnalysisResult, Verdict};
pub use codegen::{compile, CompiledProgram, OptLevel};
pub use interproc::InterprocResult;
pub use parser::{parse, ParseError};
pub use vm::{SiteAudit, Vm};

/// Convenience: parse, (for the inlining-assisted levels) inline, analyze
/// and compile in one call.
///
/// [`OptLevel::CaptureInterproc`] deliberately skips the inliner: the
/// whole point of the summary-based pass is that `Elide` verdicts survive
/// calls *without* inlining, and the `expt elision` experiment contrasts
/// exactly these pipelines.
pub fn build(src: &str, opt: OptLevel) -> Result<CompiledProgram, ParseError> {
    let mut prog = parse(src)?;
    if opt != OptLevel::CaptureInterproc {
        inline::inline_program(&mut prog);
    }
    Ok(compile(&prog, opt))
}
