//! Hand-rolled lexer for the TL mini-language.

#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    Int(u64),
    Ident(String),
    // keywords
    Fn,
    Var,
    If,
    Else,
    While,
    Return,
    Atomic,
    Malloc,
    Free,
    // punctuation / operators
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    AndAnd,
    OrOr,
    Bang,
    Amp,
    Eof,
}

pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    pub line: usize,
}

impl<'a> Lexer<'a> {
    pub fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        loop {
            while self.peek().is_ascii_whitespace() {
                self.bump();
            }
            // line comments
            if self.peek() == b'/' && self.src.get(self.pos + 1) == Some(&b'/') {
                while self.peek() != b'\n' && self.peek() != 0 {
                    self.bump();
                }
            } else {
                break;
            }
        }
    }

    pub fn next(&mut self) -> Result<Tok, String> {
        self.skip_ws();
        let c = self.peek();
        if c == 0 {
            return Ok(Tok::Eof);
        }
        if c.is_ascii_digit() {
            let mut v: u64 = 0;
            while self.peek().is_ascii_digit() {
                v = v * 10 + (self.bump() - b'0') as u64;
            }
            return Ok(Tok::Int(v));
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = self.pos;
            while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
                self.bump();
            }
            let word = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
            return Ok(match word {
                "fn" => Tok::Fn,
                "var" => Tok::Var,
                "if" => Tok::If,
                "else" => Tok::Else,
                "while" => Tok::While,
                "return" => Tok::Return,
                "atomic" => Tok::Atomic,
                "malloc" => Tok::Malloc,
                "free" => Tok::Free,
                _ => Tok::Ident(word.to_string()),
            });
        }
        self.bump();
        let two = |l: &mut Lexer<'a>, want: u8, a: Tok, b: Tok| {
            if l.peek() == want {
                l.bump();
                Ok(a)
            } else {
                Ok(b)
            }
        };
        match c {
            b'(' => Ok(Tok::LParen),
            b')' => Ok(Tok::RParen),
            b'{' => Ok(Tok::LBrace),
            b'}' => Ok(Tok::RBrace),
            b'[' => Ok(Tok::LBracket),
            b']' => Ok(Tok::RBracket),
            b',' => Ok(Tok::Comma),
            b';' => Ok(Tok::Semi),
            b'+' => Ok(Tok::Plus),
            b'-' => Ok(Tok::Minus),
            b'*' => Ok(Tok::Star),
            b'/' => Ok(Tok::Slash),
            b'%' => Ok(Tok::Percent),
            b'=' => two(self, b'=', Tok::EqEq, Tok::Assign),
            b'<' => two(self, b'=', Tok::Le, Tok::Lt),
            b'>' => two(self, b'=', Tok::Ge, Tok::Gt),
            b'!' => two(self, b'=', Tok::Ne, Tok::Bang),
            b'&' => two(self, b'&', Tok::AndAnd, Tok::Amp),
            b'|' => {
                if self.peek() == b'|' {
                    self.bump();
                    Ok(Tok::OrOr)
                } else {
                    Err(format!("line {}: unexpected '|'", self.line))
                }
            }
            _ => Err(format!(
                "line {}: unexpected character '{}'",
                self.line, c as char
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex_all(src: &str) -> Vec<Tok> {
        let mut l = Lexer::new(src);
        let mut out = Vec::new();
        loop {
            let t = l.next().unwrap();
            if t == Tok::Eof {
                break;
            }
            out.push(t);
        }
        out
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            lex_all("fn foo atomic x1 malloc"),
            vec![
                Tok::Fn,
                Tok::Ident("foo".into()),
                Tok::Atomic,
                Tok::Ident("x1".into()),
                Tok::Malloc
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            lex_all("== = <= < != ! && & ||"),
            vec![
                Tok::EqEq,
                Tok::Assign,
                Tok::Le,
                Tok::Lt,
                Tok::Ne,
                Tok::Bang,
                Tok::AndAnd,
                Tok::Amp,
                Tok::OrOr
            ]
        );
    }

    #[test]
    fn comments_and_numbers() {
        assert_eq!(
            lex_all("12 // ignored\n 34"),
            vec![Tok::Int(12), Tok::Int(34)]
        );
    }

    #[test]
    fn rejects_garbage() {
        let mut l = Lexer::new("@");
        assert!(l.next().is_err());
    }
}
