//! Function inlining (paper §3.2: the capture analysis "relies on function
//! inlining to extend the analysis results across function calls").
//!
//! A call is inlined when it appears as a whole statement's right-hand side
//! (`x = helper(..)`, `var x = helper(..)`, `helper(..);`) and the callee is
//! *simple*: non-recursive, at most `MAX_STMTS` statements, with at most
//! one `return` which must be the final statement. Inlined locals are
//! renamed, and every copied memory-access site receives a fresh id so the
//! analysis judges each inline context independently.

use std::collections::HashMap;

use crate::ast::{Expr, Function, Program, Stmt};

const MAX_STMTS: usize = 24;
const MAX_PASSES: usize = 3;

/// Inline simple calls everywhere in the program, repeating up to
/// `MAX_PASSES` times so short chains collapse; inlined sites get fresh
/// ids so the analysis judges each inline context independently.
pub fn inline_program(prog: &mut Program) {
    for _ in 0..MAX_PASSES {
        let snapshot = prog.clone();
        let mut changed = false;
        let mut n_sites = prog.n_sites;
        let mut counter = 0usize;
        for f in &mut prog.functions {
            changed |= inline_block(&mut f.body, &snapshot, &mut n_sites, &mut counter);
        }
        prog.n_sites = n_sites;
        if !changed {
            break;
        }
    }
}

fn inlinable<'p>(prog: &'p Program, name: &str, caller: &str) -> Option<&'p Function> {
    if name == caller {
        return None; // direct recursion
    }
    let f = prog.function(name)?;
    if f.body.is_empty() {
        return None;
    }
    let mut stmts = 0;
    let mut ok = true;
    crate::ast::walk_stmts(&f.body, &mut |s| {
        stmts += 1;
        // A return anywhere but the tail makes substitution non-trivial;
        // calls to the caller (mutual recursion) are also rejected.
        if let Stmt::Return(_) = s {
            ok &= std::ptr::eq(s, f.body.last().unwrap());
        }
        if let Stmt::Atomic(_) = s {
            ok = false; // don't inline transactions into transactions
        }
    });
    (ok && stmts <= MAX_STMTS && matches!(f.body.last(), Some(Stmt::Return(_)))).then_some(f)
}

fn inline_block(
    body: &mut Vec<Stmt>,
    prog: &Program,
    n_sites: &mut usize,
    counter: &mut usize,
) -> bool {
    let mut changed = false;
    let mut i = 0;
    while i < body.len() {
        // Recurse into nested blocks first.
        match &mut body[i] {
            Stmt::If(_, t, e) => {
                changed |= inline_block(t, prog, n_sites, counter);
                changed |= inline_block(e, prog, n_sites, counter);
            }
            Stmt::While(_, b) | Stmt::Atomic(b) => {
                changed |= inline_block(b, prog, n_sites, counter);
            }
            _ => {}
        }
        let call = match &body[i] {
            Stmt::Assign(target, Expr::Call(name, args)) => {
                Some((Some(target.clone()), name.clone(), args.clone(), false))
            }
            Stmt::VarDecl(target, Some(Expr::Call(name, args))) => {
                Some((Some(target.clone()), name.clone(), args.clone(), true))
            }
            Stmt::ExprStmt(Expr::Call(name, args)) => {
                Some((None, name.clone(), args.clone(), false))
            }
            _ => None,
        };
        if let Some((target, name, args, decl)) = call {
            // Find the enclosing function name: passed implicitly — we just
            // prevent self-inlining by comparing with any function whose
            // body physically contains this block; direct recursion is the
            // practical case and `inlinable` handles it via the caller name
            // being unknown here, so check for self-reference in callee.
            if let Some(callee) = inlinable(prog, &name, "") {
                if callee.params.len() == args.len() && !calls_function(callee, &name) {
                    let id = *counter;
                    *counter += 1;
                    let rename = |n: &str| format!("__inl{id}_{n}");
                    let mut replacement = Vec::new();
                    if decl {
                        if let Some(t) = &target {
                            replacement.push(Stmt::VarDecl(t.clone(), None));
                        }
                    }
                    for (p, a) in callee.params.iter().zip(args) {
                        replacement.push(Stmt::VarDecl(rename(p), Some(a)));
                    }
                    let mut inlined = callee.body.clone();
                    let ret = inlined.pop(); // the trailing return
                    let names: HashMap<String, String> = collect_names(callee)
                        .into_iter()
                        .map(|n| (n.clone(), rename(&n)))
                        .collect();
                    for s in &mut inlined {
                        rename_stmt(s, &names, n_sites);
                    }
                    replacement.extend(inlined);
                    if let Some(Stmt::Return(mut e)) = ret {
                        rename_expr(&mut e, &names, n_sites);
                        if let Some(t) = target {
                            replacement.push(Stmt::Assign(t, e));
                        } else {
                            replacement.push(Stmt::ExprStmt(e));
                        }
                    }
                    let n = replacement.len();
                    body.splice(i..=i, replacement);
                    i += n;
                    changed = true;
                    continue;
                }
            }
        }
        i += 1;
    }
    changed
}

fn calls_function(f: &Function, name: &str) -> bool {
    let mut found = false;
    crate::ast::walk_stmts(&f.body, &mut |s| {
        crate::ast::walk_exprs(s, &mut |e| {
            if let Expr::Call(n, _) = e {
                if n == name {
                    found = true;
                }
            }
        });
    });
    found
}

fn collect_names(f: &Function) -> Vec<String> {
    let mut names: Vec<String> = f.params.clone();
    crate::ast::walk_stmts(&f.body, &mut |s| {
        if let Stmt::VarDecl(n, _) = s {
            names.push(n.clone());
        }
    });
    names
}

fn fresh_site(n_sites: &mut usize) -> usize {
    let s = *n_sites;
    *n_sites += 1;
    s
}

fn rename_stmt(s: &mut Stmt, names: &HashMap<String, String>, n_sites: &mut usize) {
    match s {
        Stmt::VarDecl(n, init) => {
            if let Some(r) = names.get(n) {
                *n = r.clone();
            }
            if let Some(e) = init {
                rename_expr(e, names, n_sites);
            }
        }
        Stmt::Assign(n, e) => {
            if let Some(r) = names.get(n) {
                *n = r.clone();
            }
            rename_expr(e, names, n_sites);
        }
        Stmt::Store {
            base,
            idx,
            val,
            site,
        } => {
            *site = fresh_site(n_sites);
            rename_expr(base, names, n_sites);
            rename_expr(idx, names, n_sites);
            rename_expr(val, names, n_sites);
        }
        Stmt::If(c, t, e) => {
            rename_expr(c, names, n_sites);
            t.iter_mut().for_each(|s| rename_stmt(s, names, n_sites));
            e.iter_mut().for_each(|s| rename_stmt(s, names, n_sites));
        }
        Stmt::While(c, b) => {
            rename_expr(c, names, n_sites);
            b.iter_mut().for_each(|s| rename_stmt(s, names, n_sites));
        }
        Stmt::Atomic(b) => b.iter_mut().for_each(|s| rename_stmt(s, names, n_sites)),
        Stmt::Return(e) | Stmt::Free(e) | Stmt::ExprStmt(e) => rename_expr(e, names, n_sites),
    }
}

fn rename_expr(e: &mut Expr, names: &HashMap<String, String>, n_sites: &mut usize) {
    match e {
        Expr::Var(n) | Expr::AddrOf(n) => {
            if let Some(r) = names.get(n) {
                *n = r.clone();
            }
        }
        Expr::Load { base, idx, site } => {
            *site = fresh_site(n_sites);
            rename_expr(base, names, n_sites);
            rename_expr(idx, names, n_sites);
        }
        Expr::Malloc(e) | Expr::Unary(_, e) => rename_expr(e, names, n_sites),
        Expr::Binary(_, a, b) => {
            rename_expr(a, names, n_sites);
            rename_expr(b, names, n_sites);
        }
        Expr::Call(_, args) => args.iter_mut().for_each(|a| rename_expr(a, names, n_sites)),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{analyze_program, desugar_address_taken};
    use crate::parser::parse;

    #[test]
    fn inlines_simple_helper() {
        let mut p = parse(
            "fn init(p, v) { p[0] = v; return p; }\n\
             fn main(s) { atomic { var q = malloc(16); q = init(q, 7); } return 0; }",
        )
        .unwrap();
        inline_program(&mut p);
        let main = p.function("main").unwrap();
        // The call must be gone from main.
        let mut has_call = false;
        crate::ast::walk_stmts(&main.body, &mut |s| {
            crate::ast::walk_exprs(s, &mut |e| {
                if matches!(e, Expr::Call(..)) {
                    has_call = true;
                }
            });
        });
        assert!(!has_call, "call should have been inlined");
    }

    #[test]
    fn inlining_extends_capture_analysis_across_calls() {
        let src = "fn init(p, v) { p[0] = v; return p; }\n\
                   fn main(s) { atomic { var q = malloc(16); q = init(q, 7); } return 0; }";
        // Without inlining: init's store has Unknown base (param).
        let mut p1 = parse(src).unwrap();
        desugar_address_taken(&mut p1);
        let r1 = analyze_program(&p1);
        assert_eq!(r1.elided(), 0);
        // With inlining the allocation flows into the store.
        let mut p2 = parse(src).unwrap();
        inline_program(&mut p2);
        desugar_address_taken(&mut p2);
        let r2 = analyze_program(&p2);
        assert_eq!(r2.elided(), 1, "inlining must expose the captured store");
    }

    #[test]
    fn recursive_functions_are_left_alone() {
        let mut p = parse(
            "fn fact(n) { if (n < 2) { return 1; } else { } return n * fact(n - 1); }\n\
             fn main() { var x = fact(5); return x; }",
        )
        .unwrap();
        inline_program(&mut p);
        // fact calls itself: must survive as a call somewhere.
        let main = p.function("main").unwrap();
        let mut calls = 0;
        crate::ast::walk_stmts(&main.body, &mut |s| {
            crate::ast::walk_exprs(s, &mut |e| {
                if let Expr::Call(n, _) = e {
                    if n == "fact" {
                        calls += 1;
                    }
                }
            });
        });
        assert!(calls >= 1);
    }
}
