//! Bytecode interpreter executing compiled TL programs against the real
//! `stm` runtime.
//!
//! * Virtual registers live in a Rust `Vec`; at `TxBegin` the frame is
//!   snapshotted and restored on every retry, modeling register-allocated
//!   locals that the compiler re-initializes on transaction restart.
//! * Address-taken locals live in one-word *simulated stack* slots pushed
//!   at their declaration — a slot declared inside an atomic block is
//!   transaction-local exactly as in the paper's Figure 3, so the runtime
//!   capture analysis (if enabled in the STM config) agrees with the static
//!   verdicts.
//! * `LoadTx`/`StoreTx` go through the full capture-optimized STM barriers;
//!   `LoadDirect`/`StoreDirect` are the compiler-elided accesses
//!   (`Tx::load_direct`/`Tx::store_direct`).

use stm::{Site, Tx, TxResult, WorkerCtx};
use txmem::{Addr, NULL};

use crate::ast::{BinOp, UnOp};
use crate::codegen::{CompiledProgram, Op};

static VM_LOAD: Site = Site::shared("txcc.vm.load");
static VM_STORE: Site = Site::shared("txcc.vm.store");

/// Dynamic execution counters (how the instrumentation behaved at runtime).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VmStats {
    /// Executed `LoadTx` ops (STM read barriers).
    pub tx_loads: u64,
    /// Executed `StoreTx` ops (STM write barriers).
    pub tx_stores: u64,
    /// Executed `LoadDirect` ops (plain loads).
    pub direct_loads: u64,
    /// Executed `StoreDirect` ops (plain stores).
    pub direct_stores: u64,
    /// Top-level transactions started (excluding retries).
    pub transactions: u64,
}

#[derive(Clone)]
struct Frame {
    regs: Vec<u64>,
    slots: Vec<Addr>,
    pushed: usize,
}

/// Per-site observation of one compilation context (normal code vs. the
/// transactional clone).
#[derive(Clone, Copy, Debug, Default)]
pub struct SiteObservation {
    /// Dynamic barrier executions of this site in this context.
    pub executions: u64,
    /// Executions whose target the runtime's precise capture oracle did
    /// *not* find transaction-local.
    pub uncaptured: u64,
}

impl SiteObservation {
    /// Every observed execution (if any) targeted captured memory — the
    /// dynamic precondition for a static `Elide` verdict at this site.
    pub fn always_captured(&self) -> bool {
        self.uncaptured == 0
    }
}

/// Ground-truth audit of the static capture verdicts: run a *naively
/// instrumented* build (every site a barrier) on a runtime configured
/// with `TxConfig::classify`, and the VM records, per site and per
/// compilation context, whether every dynamic execution targeted captured
/// memory (per the runtime's precise shadow tree + stack range — see
/// `stm::Tx::observed_captured`). A static analysis is sound iff each of
/// its `Elide` sites is `always_captured` in the matching context; the
/// proptests and `expt elision` enforce exactly that.
#[derive(Clone, Debug)]
pub struct SiteAudit {
    /// Observations of sites executing in *normal* code's atomic regions.
    pub normal: Vec<SiteObservation>,
    /// Observations of sites executing in transactional clones.
    pub tx: Vec<SiteObservation>,
}

impl SiteAudit {
    /// Empty audit sized for `n_sites` site ids.
    pub fn new(n_sites: usize) -> SiteAudit {
        SiteAudit {
            normal: vec![SiteObservation::default(); n_sites],
            tx: vec![SiteObservation::default(); n_sites],
        }
    }

    fn record(&mut self, in_clone: bool, site: u32, captured: bool) {
        let obs = if in_clone {
            &mut self.tx[site as usize]
        } else {
            &mut self.normal[site as usize]
        };
        obs.executions += 1;
        if !captured {
            obs.uncaptured += 1;
        }
    }
}

/// Bytecode interpreter over one compiled program; see the module docs.
pub struct Vm<'p> {
    prog: &'p CompiledProgram,
    /// Dynamic execution counters.
    pub stats: VmStats,
    /// When set, every barrier op records its observed capture state;
    /// requires a `TxConfig::classify` runtime (panics otherwise at the
    /// first audited access).
    pub audit: Option<SiteAudit>,
}

fn binop(op: BinOp, a: u64, b: u64) -> u64 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => a.checked_div(b).expect("TL: division by zero"),
        BinOp::Mod => a.checked_rem(b).expect("TL: modulo by zero"),
        BinOp::Lt => (a < b) as u64,
        BinOp::Le => (a <= b) as u64,
        BinOp::Gt => (a > b) as u64,
        BinOp::Ge => (a >= b) as u64,
        BinOp::Eq => (a == b) as u64,
        BinOp::Ne => (a != b) as u64,
        BinOp::And => (a != 0 && b != 0) as u64,
        BinOp::Or => (a != 0 || b != 0) as u64,
    }
}

fn unop(op: UnOp, a: u64) -> u64 {
    match op {
        UnOp::Neg => a.wrapping_neg(),
        UnOp::Not => (a == 0) as u64,
    }
}

#[inline]
fn eff_addr(base: u64, idx: u64) -> Addr {
    Addr(base.wrapping_add(idx.wrapping_mul(8)))
}

impl<'p> Vm<'p> {
    /// A VM over `prog` with zeroed counters and no audit.
    pub fn new(prog: &'p CompiledProgram) -> Vm<'p> {
        Vm {
            prog,
            stats: VmStats::default(),
            audit: None,
        }
    }

    /// Enable the per-site capture audit (see [`SiteAudit`]); `n_sites`
    /// must cover every site id the compiled program carries.
    pub fn with_audit(prog: &'p CompiledProgram, n_sites: usize) -> Vm<'p> {
        Vm {
            prog,
            stats: VmStats::default(),
            audit: Some(SiteAudit::new(n_sites)),
        }
    }

    /// Run `entry(args...)` on the given worker; returns the function's
    /// return value.
    pub fn run(&mut self, w: &mut WorkerCtx<'_>, entry: &str, args: &[u64]) -> u64 {
        let (fidx, f) = self
            .prog
            .function(entry)
            .unwrap_or_else(|| panic!("no function named {entry}"));
        assert_eq!(args.len(), f.n_params, "arity mismatch calling {entry}");
        self.exec_normal(w, fidx, args)
    }

    fn new_frame(&self, fidx: usize, args: &[u64]) -> Frame {
        let f = &self.prog.funcs[fidx];
        let mut regs = vec![0u64; f.n_regs.max(args.len())];
        regs[..args.len()].copy_from_slice(args);
        Frame {
            regs,
            slots: vec![NULL; f.n_slots],
            pushed: 0,
        }
    }

    fn exec_normal(&mut self, w: &mut WorkerCtx<'_>, fidx: usize, args: &[u64]) -> u64 {
        let mut frame = self.new_frame(fidx, args);
        let code = &self.prog.funcs[fidx].normal;
        let mut pc = 0usize;
        loop {
            match &code[pc] {
                Op::Const(r, v) => frame.regs[*r as usize] = *v,
                Op::Mov(d, s) => frame.regs[*d as usize] = frame.regs[*s as usize],
                Op::Bin(op, d, a, b) => {
                    frame.regs[*d as usize] =
                        binop(*op, frame.regs[*a as usize], frame.regs[*b as usize])
                }
                Op::Un(op, d, a) => frame.regs[*d as usize] = unop(*op, frame.regs[*a as usize]),
                Op::Jmp(t) => {
                    pc = *t as usize;
                    continue;
                }
                Op::Brz(r, t) => {
                    if frame.regs[*r as usize] == 0 {
                        pc = *t as usize;
                        continue;
                    }
                }
                Op::PushSlot(s) => {
                    frame.slots[*s as usize] = w.stack_push(1);
                    frame.pushed += 1;
                }
                Op::SlotAddr(r, s) => {
                    let a = frame.slots[*s as usize];
                    assert!(!a.is_null(), "slot used before declaration");
                    frame.regs[*r as usize] = a.raw();
                }
                Op::LoadDirect(d, a, i) => {
                    self.stats.direct_loads += 1;
                    let addr = eff_addr(frame.regs[*a as usize], frame.regs[*i as usize]);
                    frame.regs[*d as usize] = w.load(addr);
                }
                Op::StoreDirect(a, i, v) => {
                    self.stats.direct_stores += 1;
                    let addr = eff_addr(frame.regs[*a as usize], frame.regs[*i as usize]);
                    w.store(addr, frame.regs[*v as usize]);
                }
                Op::LoadTx(..) | Op::StoreTx(..) => {
                    unreachable!("barrier op outside a transaction at pc {pc}")
                }
                Op::Malloc(d, s) => {
                    frame.regs[*d as usize] = w.alloc_raw(frame.regs[*s as usize]).raw();
                }
                Op::Free(r) => w.free_raw(Addr(frame.regs[*r as usize])),
                Op::TxBegin => {
                    let body_start = pc + 1;
                    let snapshot = frame.clone();
                    self.stats.transactions += 1;
                    let end_pc = w.txn(|tx| {
                        frame = snapshot.clone();
                        self.exec_tx_region(tx, fidx, &mut frame, body_start)
                    });
                    pc = end_pc;
                    continue;
                }
                Op::TxEnd => unreachable!("TxEnd without TxBegin at pc {pc}"),
                Op::Call(cf, d, argr) => {
                    let args: Vec<u64> = argr.iter().map(|r| frame.regs[*r as usize]).collect();
                    frame.regs[*d as usize] = self.exec_normal(w, *cf as usize, &args);
                }
                Op::Ret(r) => {
                    let v = frame.regs[*r as usize];
                    if frame.pushed > 0 {
                        w.stack_pop(frame.pushed);
                    }
                    return v;
                }
            }
            pc += 1;
        }
    }

    /// Execute the atomic region of `fidx`'s *normal* code starting after
    /// its `TxBegin`; returns the pc just past the matching `TxEnd`.
    fn exec_tx_region(
        &mut self,
        tx: &mut Tx<'_, '_>,
        fidx: usize,
        frame: &mut Frame,
        start: usize,
    ) -> TxResult<usize> {
        let mut pc = start;
        loop {
            // Cloning the op is cheap (Call's Vec is the only allocation
            // and calls are rare); it dodges a self/frame borrow tangle.
            let op = self.prog.funcs[fidx].normal[pc].clone();
            match op {
                Op::TxEnd => return Ok(pc + 1),
                Op::TxBegin => unreachable!("codegen flattens nested atomic"),
                Op::Ret(_) => unreachable!("codegen rejects return inside atomic"),
                _ => {
                    if let Some(next) = self.step_tx(tx, &op, frame, false)? {
                        pc = next;
                        continue;
                    }
                }
            }
            pc += 1;
        }
    }

    /// Execute the transactional clone of a callee, start to return.
    fn exec_tx_fn(&mut self, tx: &mut Tx<'_, '_>, fidx: usize, args: &[u64]) -> TxResult<u64> {
        let mut frame = self.new_frame(fidx, args);
        let mut pc = 0usize;
        loop {
            let op = self.prog.funcs[fidx].tx[pc].clone();
            match op {
                Op::Ret(r) => {
                    let v = frame.regs[r as usize];
                    if frame.pushed > 0 {
                        tx.stack_pop(frame.pushed);
                    }
                    return Ok(v);
                }
                Op::TxBegin | Op::TxEnd => {
                    unreachable!("tx clone is fully flattened")
                }
                _ => {
                    if let Some(next) = self.step_tx(tx, &op, &mut frame, true)? {
                        pc = next;
                        continue;
                    }
                }
            }
            pc += 1;
        }
    }

    /// Audit hook for one barrier execution (no-op unless enabled).
    fn audit_access(&mut self, tx: &Tx<'_, '_>, in_clone: bool, site: u32, addr: Addr) {
        if let Some(audit) = &mut self.audit {
            let captured = tx
                .observed_captured(addr)
                .expect("the site audit requires a TxConfig::classify runtime");
            audit.record(in_clone, site, captured);
        }
    }

    /// One transactional step; returns `Some(pc)` on a taken branch.
    /// `in_clone` distinguishes normal code's atomic regions from
    /// transactional-clone execution for the site audit.
    fn step_tx(
        &mut self,
        tx: &mut Tx<'_, '_>,
        op: &Op,
        frame: &mut Frame,
        in_clone: bool,
    ) -> TxResult<Option<usize>> {
        match op {
            Op::Const(r, v) => frame.regs[*r as usize] = *v,
            Op::Mov(d, s) => frame.regs[*d as usize] = frame.regs[*s as usize],
            Op::Bin(op, d, a, b) => {
                frame.regs[*d as usize] =
                    binop(*op, frame.regs[*a as usize], frame.regs[*b as usize])
            }
            Op::Un(op, d, a) => frame.regs[*d as usize] = unop(*op, frame.regs[*a as usize]),
            Op::Jmp(t) => return Ok(Some(*t as usize)),
            Op::Brz(r, t) => {
                if frame.regs[*r as usize] == 0 {
                    return Ok(Some(*t as usize));
                }
            }
            Op::PushSlot(s) => {
                frame.slots[*s as usize] = tx.stack_push(1);
                frame.pushed += 1;
            }
            Op::SlotAddr(r, s) => {
                let a = frame.slots[*s as usize];
                assert!(!a.is_null(), "slot used before declaration");
                frame.regs[*r as usize] = a.raw();
            }
            Op::LoadDirect(d, a, i) => {
                self.stats.direct_loads += 1;
                let addr = eff_addr(frame.regs[*a as usize], frame.regs[*i as usize]);
                frame.regs[*d as usize] = tx.load_direct(addr);
            }
            Op::StoreDirect(a, i, v) => {
                self.stats.direct_stores += 1;
                let addr = eff_addr(frame.regs[*a as usize], frame.regs[*i as usize]);
                tx.store_direct(addr, frame.regs[*v as usize]);
            }
            Op::LoadTx(d, a, i, site) => {
                self.stats.tx_loads += 1;
                let addr = eff_addr(frame.regs[*a as usize], frame.regs[*i as usize]);
                self.audit_access(tx, in_clone, *site, addr);
                frame.regs[*d as usize] = tx.read(&VM_LOAD, addr)?;
            }
            Op::StoreTx(a, i, v, site) => {
                self.stats.tx_stores += 1;
                let addr = eff_addr(frame.regs[*a as usize], frame.regs[*i as usize]);
                self.audit_access(tx, in_clone, *site, addr);
                tx.write(&VM_STORE, addr, frame.regs[*v as usize])?;
            }
            Op::Malloc(d, s) => {
                frame.regs[*d as usize] = tx.alloc(frame.regs[*s as usize])?.raw();
            }
            Op::Free(r) => tx.free(Addr(frame.regs[*r as usize])),
            Op::Call(cf, d, argr) => {
                let args: Vec<u64> = argr.iter().map(|r| frame.regs[*r as usize]).collect();
                frame.regs[*d as usize] = self.exec_tx_fn(tx, *cf as usize, &args)?;
            }
            Op::TxBegin | Op::TxEnd | Op::Ret(_) => unreachable!("handled by caller"),
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::OptLevel;
    use stm::{StmRuntime, TxConfig};
    use txmem::MemConfig;

    fn run_src(src: &str, entry: &str, args: &[u64], opt: OptLevel) -> (u64, VmStats) {
        let prog = crate::build(src, opt).unwrap();
        let rt = StmRuntime::new(MemConfig::small(), TxConfig::default());
        let mut w = rt.spawn_worker();
        let mut vm = Vm::new(&prog);
        let v = vm.run(&mut w, entry, args);
        (v, vm.stats)
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let src = "fn f(n) { var i = 0; var acc = 0; while (i < n) { if (i % 2 == 0) { acc = acc + i; } else { } i = i + 1; } return acc; }";
        let (v, _) = run_src(src, "f", &[10], OptLevel::Naive);
        assert_eq!(v, 2 + 4 + 6 + 8);
    }

    #[test]
    fn recursion_works() {
        let src = "fn fact(n) { if (n < 2) { return 1; } else { } return n * fact(n - 1); }";
        let (v, _) = run_src(src, "fact", &[6], OptLevel::Naive);
        assert_eq!(v, 720);
    }

    #[test]
    fn heap_roundtrip_outside_tx() {
        let src = "fn f() { var p = malloc(24); p[0] = 7; p[2] = 9; var v = p[0] + p[2]; free(p); return v; }";
        let (v, s) = run_src(src, "f", &[], OptLevel::Naive);
        assert_eq!(v, 16);
        assert_eq!(s.tx_loads + s.tx_stores, 0, "no barriers outside atomic");
    }

    #[test]
    fn transaction_commits_and_same_result_across_opt_levels() {
        let src = "fn f() { var p = malloc(16); atomic { var q = malloc(16); q[0] = 5; p[0] = q[0] + 1; } return p[0]; }";
        let (v1, s1) = run_src(src, "f", &[], OptLevel::Naive);
        let (v2, s2) = run_src(src, "f", &[], OptLevel::CaptureAnalysis);
        assert_eq!(v1, 6);
        assert_eq!(v2, 6);
        assert!(
            s2.tx_loads + s2.tx_stores < s1.tx_loads + s1.tx_stores,
            "capture analysis must execute fewer barriers: {s1:?} vs {s2:?}"
        );
    }

    #[test]
    fn address_taken_local_inside_atomic_is_stack_captured() {
        // The Fig. 1(a) pattern: an iterator-like local declared in the
        // transaction, accessed through its address.
        let src = "fn f(n) { var acc = 0; var a = &acc; atomic { var it; it = 0; var sum = 0; while (it < n) { sum = sum + it; it = it + 1; } a[0] = sum; } return acc; }";
        let (v, _) = run_src(src, "f", &[5], OptLevel::CaptureAnalysis);
        assert_eq!(v, 10);
    }

    #[test]
    fn concurrent_counter_via_vm() {
        let src = "fn bump(c, n) { var i = 0; while (i < n) { atomic { c[0] = c[0] + 1; } i = i + 1; } return 0; }";
        for opt in [OptLevel::Naive, OptLevel::CaptureAnalysis] {
            let prog = crate::build(src, opt).unwrap();
            let rt = StmRuntime::new(MemConfig::small(), TxConfig::runtime_tree_full());
            let counter = rt.alloc_global(8);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let rt = &rt;
                    let prog = &prog;
                    s.spawn(move || {
                        let mut w = rt.spawn_worker();
                        let mut vm = Vm::new(prog);
                        vm.run(&mut w, "bump", &[counter.raw(), 250]);
                    });
                }
            });
            let w = rt.spawn_worker();
            assert_eq!(w.load(counter), 1000, "{opt:?}");
        }
    }

    #[test]
    fn transactional_callee_clone_used_inside_atomic() {
        let src = "fn get(p) { return p[0]; }\n\
                   fn f(s) { atomic { s[0] = 3; s[1] = get(s) + 1; } return s[1]; }";
        // `get` is inlined by build(); defeat inlining with recursion guard:
        // call it indirectly via a chain too long to inline? Simpler: the
        // behaviour is identical either way; just check the result.
        let prog = crate::build(src, OptLevel::Naive).unwrap();
        let rt = StmRuntime::new(MemConfig::small(), TxConfig::default());
        let buf = rt.alloc_global(16);
        let mut w = rt.spawn_worker();
        let mut vm = Vm::new(&prog);
        let v = vm.run(&mut w, "f", &[buf.raw()]);
        assert_eq!(v, 4);
    }

    #[test]
    fn aborted_effects_are_invisible_under_contention() {
        // Two threads append to disjoint halves guarded by a shared cursor;
        // exact final state proves isolation through the VM.
        let src = "fn push(buf, cursor) { atomic { var i = cursor[0]; buf[i] = i + 100; cursor[0] = i + 1; } return 0; }\n\
                   fn worker(buf, cursor, n) { var i = 0; while (i < n) { var z = push(buf, cursor); i = i + 1; } return 0; }";
        let prog = crate::build(src, OptLevel::CaptureAnalysis).unwrap();
        let rt = StmRuntime::new(MemConfig::small(), TxConfig::default());
        let buf = rt.alloc_global(64 * 8);
        let cursor = rt.alloc_global(8);
        std::thread::scope(|s| {
            for _ in 0..2 {
                let rt = &rt;
                let prog = &prog;
                s.spawn(move || {
                    let mut w = rt.spawn_worker();
                    let mut vm = Vm::new(prog);
                    vm.run(&mut w, "worker", &[buf.raw(), cursor.raw(), 20]);
                });
            }
        });
        let w = rt.spawn_worker();
        assert_eq!(w.load(cursor), 40);
        for i in 0..40u64 {
            assert_eq!(w.load(buf.word(i)), i + 100, "slot {i}");
        }
    }
}
