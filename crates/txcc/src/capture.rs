//! Compiler capture analysis (paper §3.2): a flow-sensitive,
//! *intraprocedural* forward dataflow over a two-point lattice per local
//! variable:
//!
//! ```text
//!    Captured  —  provably points into memory allocated by the current
//!                 transaction (heap block from `malloc`, or the slot of a
//!                 local declared inside the atomic block)
//!    Unknown   —  everything else
//! ```
//!
//! Transfer rules (all conservative, mirroring the paper's "simple"
//! analysis built on the Intel compiler's standard pointer analysis):
//!
//! * `malloc(..)` inside an atomic block ⇒ Captured;
//! * `&x` where `x` was declared inside the atomic block ⇒ Captured
//!   (transaction-local stack, Figure 3);
//! * copies and pointer arithmetic (`p + k`, `p - k`) propagate Captured —
//!   the paper's key observation is that captured memory *stays* captured
//!   even if its address is stored to a shared location, so calls do not
//!   kill facts either;
//! * loads produce Unknown (no field-sensitive points-to), calls return
//!   Unknown, and control-flow joins meet to Unknown unless both sides are
//!   Captured;
//! * when the atomic block ends the transaction commits and every Captured
//!   fact dies (the memory is published).
//!
//! The result is a [`Verdict`] per memory-access site: `Elide` sites
//! compile to plain loads/stores, `Barrier` sites to STM barriers,
//! `Outside` sites sit outside any transaction.

use std::collections::HashMap;

use crate::ast::{BinOp, Expr, Function, Program, SiteId, Stmt};

/// The analysis's decision for one memory-access site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Not inside an atomic block: plain access, no barrier in any case.
    Outside,
    /// Inside a transaction, target not provably captured: full barrier.
    Barrier,
    /// Inside a transaction, target proven captured: barrier removed.
    Elide,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Abs {
    Captured,
    Unknown,
}

fn meet(a: Abs, b: Abs) -> Abs {
    if a == Abs::Captured && b == Abs::Captured {
        Abs::Captured
    } else {
        Abs::Unknown
    }
}

/// Overlay per-function verdicts onto a program-wide vector: `Outside`
/// means "this pass never saw the site" and loses to any real verdict.
pub(crate) fn merge_verdicts(into: &mut [Verdict], from: &[Verdict]) {
    for (dst, src) in into.iter_mut().zip(from) {
        if *src != Verdict::Outside {
            *dst = *src;
        }
    }
}

/// Analysis output for a whole program.
#[derive(Clone, Debug)]
pub struct AnalysisResult {
    /// One verdict per site id.
    pub verdicts: Vec<Verdict>,
}

impl AnalysisResult {
    /// Number of `Elide` sites.
    pub fn elided(&self) -> usize {
        self.verdicts
            .iter()
            .filter(|v| **v == Verdict::Elide)
            .count()
    }

    /// Number of `Barrier` sites.
    pub fn barriers(&self) -> usize {
        self.verdicts
            .iter()
            .filter(|v| **v == Verdict::Barrier)
            .count()
    }
}

struct Ctx<'a> {
    verdicts: &'a mut Vec<Verdict>,
    /// Locals declared inside the current atomic block (their slots are
    /// transaction-local stack).
    atomic_locals: Vec<String>,
    in_atomic: u32,
    record: bool,
}

impl Ctx<'_> {
    fn set(&mut self, site: SiteId, v: Verdict) {
        if self.record {
            self.verdicts[site] = v;
        }
    }

    fn verdict_for(&self, base: Abs) -> Verdict {
        if self.in_atomic == 0 {
            Verdict::Outside
        } else if base == Abs::Captured {
            Verdict::Elide
        } else {
            Verdict::Barrier
        }
    }
}

type Env = HashMap<String, Abs>;

fn eval(e: &Expr, env: &mut Env, ctx: &mut Ctx<'_>) -> Abs {
    match e {
        Expr::Int(_) => Abs::Unknown,
        Expr::Var(x) => *env.get(x).unwrap_or(&Abs::Unknown),
        Expr::Malloc(size) => {
            eval(size, env, ctx);
            if ctx.in_atomic > 0 {
                Abs::Captured
            } else {
                Abs::Unknown
            }
        }
        Expr::AddrOf(x) => {
            if ctx.atomic_locals.iter().any(|l| l == x) {
                Abs::Captured
            } else {
                Abs::Unknown
            }
        }
        Expr::Load { base, idx, site } => {
            let b = eval(base, env, ctx);
            eval(idx, env, ctx);
            let v = ctx.verdict_for(b);
            ctx.set(*site, v);
            Abs::Unknown // loaded values: no points-to through memory
        }
        Expr::Unary(_, e) => {
            eval(e, env, ctx);
            Abs::Unknown
        }
        Expr::Binary(op, a, b) => {
            let va = eval(a, env, ctx);
            let vb = eval(b, env, ctx);
            match op {
                // Pointer arithmetic keeps capture (offsets stay within the
                // allocated block, as in the paper's field accesses).
                BinOp::Add | BinOp::Sub => {
                    if va == Abs::Captured || vb == Abs::Captured {
                        Abs::Captured
                    } else {
                        Abs::Unknown
                    }
                }
                _ => Abs::Unknown,
            }
        }
        Expr::Call(_, args) => {
            for a in args {
                eval(a, env, ctx);
            }
            Abs::Unknown
        }
    }
}

fn analyze_block(body: &[Stmt], env: &mut Env, ctx: &mut Ctx<'_>) {
    for s in body {
        match s {
            Stmt::VarDecl(x, init) => {
                if ctx.in_atomic > 0 {
                    ctx.atomic_locals.push(x.clone());
                }
                let v = init
                    .as_ref()
                    .map(|e| eval(e, env, ctx))
                    .unwrap_or(Abs::Unknown);
                env.insert(x.clone(), v);
            }
            Stmt::Assign(x, e) => {
                let v = eval(e, env, ctx);
                env.insert(x.clone(), v);
            }
            Stmt::Store {
                base,
                idx,
                val,
                site,
            } => {
                let b = eval(base, env, ctx);
                eval(idx, env, ctx);
                eval(val, env, ctx);
                let v = ctx.verdict_for(b);
                ctx.set(*site, v);
            }
            Stmt::If(c, t, e) => {
                eval(c, env, ctx);
                let mut env_t = env.clone();
                let mut env_e = env.clone();
                analyze_block(t, &mut env_t, ctx);
                analyze_block(e, &mut env_e, ctx);
                *env = join_envs(&env_t, &env_e);
            }
            Stmt::While(c, b) => {
                // Fixpoint without recording, then one recording pass over
                // the stable state (verdicts must hold on every iteration).
                // Iteration runs to convergence — the joined sequence only
                // descends (per-variable two-point lattice, key set fixed
                // after one pass), so it terminates; recording from a
                // non-fixed-point state would let a long copy chain smuggle
                // a stale Captured fact past the join and elide a barrier
                // unsoundly. The cap is a defensive valve only: if it is
                // ever hit, degrade everything to Unknown (sound) rather
                // than trust the unstable state.
                let record = ctx.record;
                ctx.record = false;
                let mut converged = false;
                for _ in 0..crate::MAX_LOOP_FIXPOINT_ITERS {
                    eval(c, env, ctx);
                    let mut env_b = env.clone();
                    analyze_block(b, &mut env_b, ctx);
                    let joined = join_envs(env, &env_b);
                    if joined == *env {
                        converged = true;
                        break;
                    }
                    *env = joined;
                }
                if !converged {
                    debug_assert!(false, "loop fixpoint failed to converge");
                    for v in env.values_mut() {
                        *v = Abs::Unknown;
                    }
                }
                ctx.record = record;
                eval(c, env, ctx);
                let mut env_b = env.clone();
                analyze_block(b, &mut env_b, ctx);
                *env = join_envs(env, &env_b);
            }
            Stmt::Return(e) | Stmt::Free(e) | Stmt::ExprStmt(e) => {
                eval(e, env, ctx);
            }
            Stmt::Atomic(b) => {
                let saved_locals = ctx.atomic_locals.len();
                ctx.in_atomic += 1;
                analyze_block(b, env, ctx);
                ctx.in_atomic -= 1;
                ctx.atomic_locals.truncate(saved_locals);
                if ctx.in_atomic == 0 {
                    // Commit: captured memory is published; every fact dies.
                    for v in env.values_mut() {
                        *v = Abs::Unknown;
                    }
                }
            }
        }
    }
}

fn join_envs(a: &Env, b: &Env) -> Env {
    let mut out = Env::new();
    for (k, &va) in a {
        let vb = *b.get(k).unwrap_or(&Abs::Unknown);
        out.insert(k.clone(), meet(va, vb));
    }
    for k in b.keys() {
        out.entry(k.clone()).or_insert(Abs::Unknown);
    }
    out
}

/// Analyze one function. With `assume_atomic` the whole body is treated as
/// already inside a transaction — used to compile the transactional clone
/// of a function that is called from atomic blocks (a non-inlined callee
/// still gets its *own* allocations elided; its parameters are Unknown,
/// which is exactly the conservatism the paper describes for calls).
pub fn analyze_function(f: &Function, n_sites: usize, assume_atomic: bool) -> AnalysisResult {
    let mut verdicts = vec![Verdict::Outside; n_sites];
    let mut ctx = Ctx {
        verdicts: &mut verdicts,
        atomic_locals: Vec::new(),
        in_atomic: u32::from(assume_atomic),
        record: true,
    };
    let mut env: Env = f.params.iter().map(|p| (p.clone(), Abs::Unknown)).collect();
    analyze_block(&f.body, &mut env, &mut ctx);
    AnalysisResult { verdicts }
}

/// Analyze every function of a program (normal versions).
pub fn analyze_program(prog: &Program) -> AnalysisResult {
    let mut verdicts = vec![Verdict::Outside; prog.n_sites];
    for f in &prog.functions {
        let r = analyze_function(f, prog.n_sites, false);
        for (i, v) in r.verdicts.iter().enumerate() {
            if *v != Verdict::Outside {
                verdicts[i] = *v;
            }
        }
    }
    AnalysisResult { verdicts }
}

/// Desugar accesses to address-taken locals into explicit memory accesses
/// through `&x`, so both the analysis and the code generator treat them as
/// the stack accesses they really are (paper Fig. 1(a): an iterator local
/// whose address is passed around). Must run before analysis/codegen.
pub fn desugar_address_taken(prog: &mut Program) {
    let mut next_site = prog.n_sites;
    for f in &mut prog.functions {
        let taken = crate::ast::address_taken(&f.body);
        let taken: std::collections::HashSet<String> = taken;
        if taken.is_empty() {
            continue;
        }
        desugar_block(&mut f.body, &taken, &mut next_site);
    }
    prog.n_sites = next_site;
}

fn desugar_block(
    body: &mut Vec<Stmt>,
    taken: &std::collections::HashSet<String>,
    next_site: &mut usize,
) {
    let mut i = 0;
    while i < body.len() {
        // Split `var x = e;` for address-taken x into decl + store.
        let replace = match &mut body[i] {
            Stmt::VarDecl(x, init @ Some(_)) if taken.contains(x) => {
                let e = init.take().unwrap();
                Some((x.clone(), e))
            }
            _ => None,
        };
        if let Some((x, mut e)) = replace {
            desugar_expr(&mut e, taken, next_site);
            let store = Stmt::Store {
                base: Expr::AddrOf(x.clone()),
                idx: Expr::Int(0),
                val: e,
                site: fresh(next_site),
            };
            body[i] = Stmt::VarDecl(x, None);
            body.insert(i + 1, store);
            i += 2;
            continue;
        }
        match &mut body[i] {
            Stmt::Assign(x, e) if taken.contains(x) => {
                desugar_expr(e, taken, next_site);
                let val = std::mem::replace(e, Expr::Int(0));
                body[i] = Stmt::Store {
                    base: Expr::AddrOf(x.clone()),
                    idx: Expr::Int(0),
                    val,
                    site: fresh(next_site),
                };
            }
            Stmt::Assign(_, e) => desugar_expr(e, taken, next_site),
            Stmt::VarDecl(_, Some(e)) => desugar_expr(e, taken, next_site),
            Stmt::Store { base, idx, val, .. } => {
                desugar_expr(base, taken, next_site);
                desugar_expr(idx, taken, next_site);
                desugar_expr(val, taken, next_site);
            }
            Stmt::If(c, t, e) => {
                desugar_expr(c, taken, next_site);
                desugar_block(t, taken, next_site);
                desugar_block(e, taken, next_site);
            }
            Stmt::While(c, b) => {
                desugar_expr(c, taken, next_site);
                desugar_block(b, taken, next_site);
            }
            Stmt::Atomic(b) => desugar_block(b, taken, next_site),
            Stmt::Return(e) | Stmt::Free(e) | Stmt::ExprStmt(e) => {
                desugar_expr(e, taken, next_site)
            }
            _ => {}
        }
        i += 1;
    }
}

fn fresh(next_site: &mut usize) -> usize {
    let s = *next_site;
    *next_site += 1;
    s
}

fn desugar_expr(e: &mut Expr, taken: &std::collections::HashSet<String>, next_site: &mut usize) {
    match e {
        Expr::Var(x) if taken.contains(x) => {
            *e = Expr::Load {
                base: Box::new(Expr::AddrOf(x.clone())),
                idx: Box::new(Expr::Int(0)),
                site: fresh(next_site),
            };
        }
        Expr::Load { base, idx, .. } => {
            desugar_expr(base, taken, next_site);
            desugar_expr(idx, taken, next_site);
        }
        Expr::Malloc(e) | Expr::Unary(_, e) => desugar_expr(e, taken, next_site),
        Expr::Binary(_, a, b) => {
            desugar_expr(a, taken, next_site);
            desugar_expr(b, taken, next_site);
        }
        Expr::Call(_, args) => args
            .iter_mut()
            .for_each(|a| desugar_expr(a, taken, next_site)),
        _ => {}
    }
}

/// Count the memory-access sites inside atomic blocks (denominator for the
/// "portion removed" metric).
pub fn sites_in_atomic(prog: &Program) -> usize {
    let mut n = 0;
    for f in &prog.functions {
        count_block(&f.body, false, &mut n);
    }
    n
}

fn count_block(body: &[Stmt], in_atomic: bool, n: &mut usize) {
    let count_expr = |e: &Expr, n: &mut usize, in_atomic: bool| {
        if !in_atomic {
            return;
        }
        let mut stack = vec![e];
        while let Some(e) = stack.pop() {
            match e {
                Expr::Load { base, idx, .. } => {
                    *n += 1;
                    stack.push(base);
                    stack.push(idx);
                }
                Expr::Malloc(e) | Expr::Unary(_, e) => stack.push(e),
                Expr::Binary(_, a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
                Expr::Call(_, args) => stack.extend(args.iter()),
                _ => {}
            }
        }
    };
    for s in body {
        match s {
            Stmt::Atomic(b) => count_block(b, true, n),
            Stmt::If(c, t, e) => {
                count_expr(c, n, in_atomic);
                count_block(t, in_atomic, n);
                count_block(e, in_atomic, n);
            }
            Stmt::While(c, b) => {
                count_expr(c, n, in_atomic);
                count_block(b, in_atomic, n);
            }
            Stmt::Store { base, idx, val, .. } => {
                if in_atomic {
                    *n += 1;
                }
                count_expr(base, n, in_atomic);
                count_expr(idx, n, in_atomic);
                count_expr(val, n, in_atomic);
            }
            Stmt::VarDecl(_, Some(e))
            | Stmt::Assign(_, e)
            | Stmt::Return(e)
            | Stmt::Free(e)
            | Stmt::ExprStmt(e) => count_expr(e, n, in_atomic),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn verdicts_of(src: &str) -> (Program, AnalysisResult) {
        let mut p = parse(src).unwrap();
        desugar_address_taken(&mut p);
        let r = analyze_program(&p);
        (p, r)
    }

    #[test]
    fn malloc_in_atomic_is_captured() {
        let (_, r) =
            verdicts_of("fn f(s) { atomic { var p = malloc(16); p[0] = 1; s[0] = 2; } return 0; }");
        assert_eq!(r.elided(), 1, "p[0] elided");
        assert_eq!(r.barriers(), 1, "s[0] keeps its barrier");
    }

    #[test]
    fn pointer_arithmetic_preserves_capture() {
        let (_, r) = verdicts_of(
            "fn f() { atomic { var p = malloc(32); var q = p + 2; q[0] = 1; } return 0; }",
        );
        assert_eq!(r.elided(), 1);
    }

    #[test]
    fn loads_produce_unknown() {
        let (_, r) = verdicts_of(
            "fn f(s) { atomic { var p = malloc(16); p[0] = s[0]; var q = p[0]; q[0] = 1; } return 0; }",
        );
        // p[0]=... elided; s[0] read barrier; p[0] read elided; q[0]=1 must
        // be a barrier: q came through a load.
        assert_eq!(r.elided(), 2);
        assert_eq!(r.barriers(), 2);
    }

    #[test]
    fn capture_dies_at_commit() {
        let (_, r) = verdicts_of(
            "fn f() { var p = 0; atomic { p = malloc(16); p[0] = 1; } atomic { p[1] = 2; } return 0; }",
        );
        // First write elided; after the first transaction commits, p points
        // to *shared* memory: the second access needs a barrier.
        assert_eq!(r.elided(), 1);
        assert_eq!(r.barriers(), 1);
    }

    #[test]
    fn join_is_conservative() {
        let (_, r) = verdicts_of(
            "fn f(s, c) { atomic { var p = malloc(16); if (c) { p = s; } else { } p[0] = 1; } return 0; }",
        );
        // On one path p is shared: the store must keep its barrier.
        assert_eq!(r.elided(), 0);
        assert!(r.barriers() >= 1);
    }

    #[test]
    fn both_branches_captured_stays_captured() {
        let (_, r) = verdicts_of(
            "fn f(c) { atomic { var p = malloc(16); if (c) { p = malloc(8); } else { } p[0] = 1; } return 0; }",
        );
        assert_eq!(r.elided(), 1);
    }

    #[test]
    fn long_copy_chain_in_loop_converges_soundly() {
        // Shared-ness propagates one variable per loop iteration through a
        // 12-step copy chain — longer than the historic 8-iteration cap.
        // Recording before convergence would elide v1's store even though
        // v1 aliases the shared parameter from iteration 12 onwards.
        let mut src = String::from("fn f(s, n) { atomic { var a = malloc(8);\n");
        for k in 1..=12 {
            src.push_str(&format!("var v{k} = a;\n"));
        }
        src.push_str("var i = 0;\nwhile (i < n) {\n  v1[0] = 1;\n");
        for k in 1..12 {
            src.push_str(&format!("  v{k} = v{};\n", k + 1));
        }
        src.push_str("  v12 = s;\n  i = i + 1;\n} } return 0; }");
        let (_, r) = verdicts_of(&src);
        assert_eq!(r.elided(), 0, "v1 is shared after 12 iterations");
        assert_eq!(r.barriers(), 1);
    }

    #[test]
    fn loop_invalidation_reaches_fixpoint() {
        let (_, r) = verdicts_of(
            "fn f(s, n) { atomic { var p = malloc(16); var i = 0; while (i < n) { p[0] = i; p = s; i = i + 1; } } return 0; }",
        );
        // On the second iteration p is shared — the write inside the loop
        // must be a barrier even though the first iteration saw it captured.
        assert_eq!(r.elided(), 0);
        assert!(r.barriers() >= 1);
    }

    #[test]
    fn atomic_local_stack_is_captured() {
        let (_, r) = verdicts_of(
            "fn f(s) { atomic { var it; var q = &it; q[0] = s[0]; var z = q[0]; s[1] = z; } return 0; }",
        );
        // q = &it (declared in atomic) => q[0] accesses elided; the named
        // access desugaring routes `it` itself the same way.
        assert!(r.elided() >= 2, "elided = {}", r.elided());
    }

    #[test]
    fn live_in_local_needs_barrier() {
        let (_, r) = verdicts_of(
            "fn f(s) { var acc = 0; var q = &acc; atomic { q[0] = s[0]; } return acc; }",
        );
        // `acc` exists before the transaction: live-in stack, not captured.
        assert_eq!(r.elided(), 0);
        assert!(r.barriers() >= 1);
    }

    #[test]
    fn publishing_does_not_kill_capture() {
        // The paper's central example: storing the captured pointer into a
        // shared location does NOT make the captured block shared within
        // this transaction.
        let (_, r) = verdicts_of(
            "fn f(s) { atomic { var p = malloc(16); s[0] = p; p[0] = 42; } return 0; }",
        );
        // s[0] = p: barrier (s shared). p[0] = 42 *after publication*:
        // still elided.
        assert_eq!(r.elided(), 1);
        assert_eq!(r.barriers(), 1);
    }

    #[test]
    fn outside_atomic_everything_is_plain() {
        let (_, r) = verdicts_of("fn f(s) { s[0] = 1; var x = s[0]; return x; }");
        assert_eq!(r.elided(), 0);
        assert_eq!(r.barriers(), 0);
        assert!(r.verdicts.iter().all(|v| *v == Verdict::Outside));
    }
}
