//! Bytecode generation. Every function is compiled twice: a *normal*
//! version (memory accesses are plain) and a *transactional clone* used
//! when the function is called from inside an atomic block — the same
//! function-cloning scheme real STM compilers use.
//!
//! [`OptLevel::Naive`] instruments every memory access inside transactions
//! (the paper's over-instrumenting baseline); [`OptLevel::CaptureAnalysis`]
//! runs the §3.2 analysis first and emits plain accesses for `Elide` sites.

use std::collections::HashMap;

use crate::ast::{address_taken, BinOp, Expr, Function, Program, Stmt, UnOp};
use crate::capture::{analyze_function, desugar_address_taken, merge_verdicts, Verdict};

/// How much static capture analysis the compiler applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OptLevel {
    /// Every load/store inside an atomic block becomes an STM barrier.
    Naive,
    /// Intraprocedural compiler capture analysis (paper §3.2) elides
    /// barriers proven unnecessary; relies on [`crate::inline`] running
    /// first to see through calls.
    CaptureAnalysis,
    /// Interprocedural summary-based capture analysis
    /// ([`crate::interproc`]): elides across call boundaries with no
    /// inlining at all. A superset of `CaptureAnalysis` verdicts on the
    /// same (non-inlined) program.
    CaptureInterproc,
}

type Reg = u16;

/// Bytecode instructions of the TL VM. Registers are per-frame virtual
/// registers; `LoadTx`/`StoreTx` are the instrumented (barrier) accesses,
/// `LoadDirect`/`StoreDirect` the plain ones.
#[derive(Clone, Debug)]
#[allow(missing_docs)]
pub enum Op {
    Const(Reg, u64),
    Mov(Reg, Reg),
    Bin(BinOp, Reg, Reg, Reg),
    Un(UnOp, Reg, Reg),
    Jmp(u32),
    /// Branch to target when the register is zero.
    Brz(Reg, u32),
    /// Allocate the one-word stack slot for an address-taken local.
    PushSlot(u16),
    SlotAddr(Reg, u16),
    /// Plain word load/store: `rd = mem[ra + 8*ri]`.
    LoadDirect(Reg, Reg, Reg),
    StoreDirect(Reg, Reg, Reg),
    /// STM barrier load/store. The trailing field is the source site id,
    /// carried so the VM's [`crate::vm::SiteAudit`] can attribute each
    /// dynamic barrier execution to its static site.
    LoadTx(Reg, Reg, Reg, u32),
    StoreTx(Reg, Reg, Reg, u32),
    Malloc(Reg, Reg),
    Free(Reg),
    TxBegin,
    TxEnd,
    Call(u16, Reg, Vec<Reg>),
    Ret(Reg),
}

/// One function's two compiled bodies plus its frame requirements.
#[derive(Clone, Debug)]
pub struct CompiledFn {
    /// Source function name.
    pub name: String,
    /// Arity (parameters arrive in the first registers).
    pub n_params: usize,
    /// Virtual registers the frame needs.
    pub n_regs: usize,
    /// Simulated-stack slots for address-taken locals.
    pub n_slots: usize,
    /// Code for calls from outside transactions.
    pub normal: Vec<Op>,
    /// Transactional clone (assume-atomic analysis verdicts).
    pub tx: Vec<Op>,
}

/// Static instrumentation statistics — what the "compiler" did.
#[derive(Clone, Copy, Debug, Default)]
pub struct InstrStats {
    /// Barrier ops emitted into atomic code.
    pub barriers: usize,
    /// Accesses inside atomic code compiled to plain loads/stores.
    pub elided: usize,
}

/// A whole compiled program plus what the compiler did to it.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    /// Compiled functions, in program order.
    pub funcs: Vec<CompiledFn>,
    /// Static instrumentation counts (normal code).
    pub stats: InstrStats,
    /// The optimization level this program was compiled at.
    pub opt: OptLevel,
}

impl CompiledProgram {
    /// Look a compiled function up by name; returns its index too.
    pub fn function(&self, name: &str) -> Option<(usize, &CompiledFn)> {
        self.funcs.iter().enumerate().find(|(_, f)| f.name == name)
    }
}

/// Program-wide verdict vectors (by site id), one per compilation
/// context: the normal versions and the transactional clones.
struct ProgramVerdicts {
    normal: Vec<Verdict>,
    tx: Vec<Verdict>,
}

/// Run the analysis selected by `opt` over the whole (desugared) program.
fn analyze_for(prog: &Program, opt: OptLevel) -> Option<ProgramVerdicts> {
    match opt {
        OptLevel::Naive => None,
        OptLevel::CaptureAnalysis => {
            // Per-function flow analysis; sites are function-disjoint, so
            // merging into one program-wide vector loses nothing.
            let mut normal = vec![Verdict::Outside; prog.n_sites];
            let mut tx = vec![Verdict::Outside; prog.n_sites];
            for f in &prog.functions {
                merge_verdicts(
                    &mut normal,
                    &analyze_function(f, prog.n_sites, false).verdicts,
                );
                merge_verdicts(&mut tx, &analyze_function(f, prog.n_sites, true).verdicts);
            }
            Some(ProgramVerdicts { normal, tx })
        }
        OptLevel::CaptureInterproc => {
            let r = crate::interproc::analyze_program(prog);
            Some(ProgramVerdicts {
                normal: r.normal.verdicts,
                tx: r.tx.verdicts,
            })
        }
    }
}

/// Compile a program (desugars address-taken locals internally; run the
/// inliner beforehand if the *intraprocedural* analysis should see
/// through calls — the interprocedural level needs no inlining).
pub fn compile(prog: &Program, opt: OptLevel) -> CompiledProgram {
    let mut prog = prog.clone();
    desugar_address_taken(&mut prog);
    let fn_index: HashMap<String, u16> = prog
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.clone(), i as u16))
        .collect();
    let verdicts = analyze_for(&prog, opt);
    let mut stats = InstrStats::default();
    let funcs = prog
        .functions
        .iter()
        .map(|f| compile_fn(f, &fn_index, verdicts.as_ref(), &mut stats))
        .collect();
    CompiledProgram { funcs, stats, opt }
}

fn compile_fn(
    f: &Function,
    fn_index: &HashMap<String, u16>,
    verdicts: Option<&ProgramVerdicts>,
    stats: &mut InstrStats,
) -> CompiledFn {
    let mut normal_cg = FnCodegen::new(f, fn_index, verdicts.map(|v| v.normal.as_slice()), false);
    let normal = normal_cg.run(f);
    stats.barriers += normal_cg.barriers;
    stats.elided += normal_cg.elided;
    let mut tx_cg = FnCodegen::new(f, fn_index, verdicts.map(|v| v.tx.as_slice()), true);
    let tx = tx_cg.run(f);
    CompiledFn {
        name: f.name.clone(),
        n_params: f.params.len(),
        n_regs: normal_cg.next_reg.max(tx_cg.next_reg) as usize,
        n_slots: normal_cg.slots.len().max(tx_cg.slots.len()),
        normal,
        tx,
    }
}

struct FnCodegen<'a> {
    fn_index: &'a HashMap<String, u16>,
    /// `None` = naive (instrument everything in atomic); otherwise the
    /// program-wide verdicts for this compilation context (borrowed — one
    /// shared vector serves every function).
    verdicts: Option<&'a [Verdict]>,
    regs: HashMap<String, Reg>,
    slots: HashMap<String, u16>,
    next_reg: u16,
    code: Vec<Op>,
    in_atomic: u32,
    /// Whole function body is transactional (tx clone).
    assume_atomic: bool,
    barriers: usize,
    elided: usize,
}

impl<'a> FnCodegen<'a> {
    fn new(
        f: &Function,
        fn_index: &'a HashMap<String, u16>,
        verdicts: Option<&'a [Verdict]>,
        assume_atomic: bool,
    ) -> FnCodegen<'a> {
        let taken = address_taken(&f.body);
        let mut cg = FnCodegen {
            fn_index,
            verdicts,
            regs: HashMap::new(),
            slots: HashMap::new(),
            next_reg: 0,
            code: Vec::new(),
            in_atomic: 0,
            assume_atomic,
            barriers: 0,
            elided: 0,
        };
        for p in &f.params {
            let r = cg.fresh();
            cg.regs.insert(p.clone(), r);
        }
        // Pre-assign slot ids for address-taken locals (pushed at decl).
        let mut names: Vec<&String> = taken.iter().collect();
        names.sort();
        for (i, n) in names.into_iter().enumerate() {
            cg.slots.insert(n.clone(), i as u16);
        }
        cg
    }

    fn run(&mut self, f: &Function) -> Vec<Op> {
        self.block(&f.body);
        // Implicit `return 0` for functions that fall off the end.
        let r = self.fresh();
        self.code.push(Op::Const(r, 0));
        self.code.push(Op::Ret(r));
        std::mem::take(&mut self.code)
    }

    fn fresh(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    fn transactional(&self) -> bool {
        self.assume_atomic || self.in_atomic > 0
    }

    /// Decide barrier vs plain for an access site.
    fn wants_barrier(&mut self, site: usize) -> bool {
        if !self.transactional() {
            return false;
        }
        let barrier = match &self.verdicts {
            None => true, // naive: everything gets a barrier
            Some(v) => match v.get(site) {
                // `Outside` can still show up in the tx clone when the
                // normal analysis ran (sites outside atomic blocks); the
                // assume-atomic analysis marks them properly, so trust it.
                Some(Verdict::Elide) => false,
                _ => true,
            },
        };
        if barrier {
            self.barriers += 1;
        } else {
            self.elided += 1;
        }
        barrier
    }

    fn block(&mut self, body: &[Stmt]) {
        for s in body {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::VarDecl(x, init) => {
                if let Some(&slot) = self.slots.get(x) {
                    self.code.push(Op::PushSlot(slot));
                    debug_assert!(init.is_none(), "desugar splits slot initializers");
                } else {
                    let r = match init {
                        Some(e) => self.expr(e),
                        None => {
                            let r = self.fresh();
                            self.code.push(Op::Const(r, 0));
                            r
                        }
                    };
                    // Bind the variable to a dedicated register.
                    let dst = self.fresh();
                    self.code.push(Op::Mov(dst, r));
                    self.regs.insert(x.clone(), dst);
                }
            }
            Stmt::Assign(x, e) => {
                let r = self.expr(e);
                let dst = *self
                    .regs
                    .get(x)
                    .unwrap_or_else(|| panic!("assignment to undeclared variable {x}"));
                self.code.push(Op::Mov(dst, r));
            }
            Stmt::Store {
                base,
                idx,
                val,
                site,
            } => {
                let rb = self.expr(base);
                let ri = self.expr(idx);
                let rv = self.expr(val);
                if self.wants_barrier(*site) {
                    self.code.push(Op::StoreTx(rb, ri, rv, *site as u32));
                } else {
                    self.code.push(Op::StoreDirect(rb, ri, rv));
                }
            }
            Stmt::If(c, t, e) => {
                let rc = self.expr(c);
                let brz_at = self.code.len();
                self.code.push(Op::Brz(rc, 0));
                self.block(t);
                let jmp_at = self.code.len();
                self.code.push(Op::Jmp(0));
                let else_pc = self.code.len() as u32;
                self.block(e);
                let end_pc = self.code.len() as u32;
                self.code[brz_at] = Op::Brz(rc, else_pc);
                self.code[jmp_at] = Op::Jmp(end_pc);
            }
            Stmt::While(c, b) => {
                let head = self.code.len() as u32;
                let rc = self.expr(c);
                let brz_at = self.code.len();
                self.code.push(Op::Brz(rc, 0));
                self.block(b);
                self.code.push(Op::Jmp(head));
                let end = self.code.len() as u32;
                self.code[brz_at] = Op::Brz(rc, end);
            }
            Stmt::Return(e) => {
                assert_eq!(
                    self.in_atomic, 0,
                    "`return` inside an atomic block is not supported by txcc"
                );
                let r = self.expr(e);
                self.code.push(Op::Ret(r));
            }
            Stmt::Atomic(b) => {
                if self.transactional() {
                    // Flat nesting (the Intel STM's default for C/C++).
                    self.in_atomic += 1;
                    self.block(b);
                    self.in_atomic -= 1;
                } else {
                    self.code.push(Op::TxBegin);
                    self.in_atomic += 1;
                    self.block(b);
                    self.in_atomic -= 1;
                    self.code.push(Op::TxEnd);
                }
            }
            Stmt::Free(e) => {
                let r = self.expr(e);
                self.code.push(Op::Free(r));
            }
            Stmt::ExprStmt(e) => {
                self.expr(e);
            }
        }
    }

    fn expr(&mut self, e: &Expr) -> Reg {
        match e {
            Expr::Int(v) => {
                let r = self.fresh();
                self.code.push(Op::Const(r, *v));
                r
            }
            Expr::Var(x) => *self
                .regs
                .get(x)
                .unwrap_or_else(|| panic!("use of undeclared variable {x}")),
            Expr::AddrOf(x) => {
                let slot = *self
                    .slots
                    .get(x)
                    .unwrap_or_else(|| panic!("&{x}: not an address-taken local"));
                let r = self.fresh();
                self.code.push(Op::SlotAddr(r, slot));
                r
            }
            Expr::Load { base, idx, site } => {
                let rb = self.expr(base);
                let ri = self.expr(idx);
                let rd = self.fresh();
                if self.wants_barrier(*site) {
                    self.code.push(Op::LoadTx(rd, rb, ri, *site as u32));
                } else {
                    self.code.push(Op::LoadDirect(rd, rb, ri));
                }
                rd
            }
            Expr::Malloc(size) => {
                let rs = self.expr(size);
                let rd = self.fresh();
                self.code.push(Op::Malloc(rd, rs));
                rd
            }
            Expr::Unary(op, e) => {
                let ra = self.expr(e);
                let rd = self.fresh();
                self.code.push(Op::Un(*op, rd, ra));
                rd
            }
            Expr::Binary(op, a, b) => {
                let ra = self.expr(a);
                let rb = self.expr(b);
                let rd = self.fresh();
                self.code.push(Op::Bin(*op, rd, ra, rb));
                rd
            }
            Expr::Call(name, args) => {
                let regs: Vec<Reg> = args.iter().map(|a| self.expr(a)).collect();
                let fidx = *self
                    .fn_index
                    .get(name)
                    .unwrap_or_else(|| panic!("call to unknown function {name}"));
                let rd = self.fresh();
                self.code.push(Op::Call(fidx, rd, regs));
                rd
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn naive_instruments_everything_in_atomic() {
        let p =
            parse("fn f(s) { atomic { var p = malloc(16); p[0] = 1; s[0] = p[0]; } return 0; }")
                .unwrap();
        let naive = compile(&p, OptLevel::Naive);
        assert_eq!(naive.stats.barriers, 3);
        assert_eq!(naive.stats.elided, 0);
    }

    #[test]
    fn capture_analysis_elides_proven_sites() {
        let p =
            parse("fn f(s) { atomic { var p = malloc(16); p[0] = 1; s[0] = p[0]; } return 0; }")
                .unwrap();
        let o = compile(&p, OptLevel::CaptureAnalysis);
        assert_eq!(o.stats.elided, 2, "p[0] write and p[0] read");
        assert_eq!(o.stats.barriers, 1, "s[0] keeps its barrier");
    }

    #[test]
    fn outside_atomic_no_barriers_emitted() {
        let p = parse("fn f(s) { s[0] = 1; return s[0]; }").unwrap();
        let c = compile(&p, OptLevel::Naive);
        let f = &c.funcs[0];
        assert!(f
            .normal
            .iter()
            .all(|op| !matches!(op, Op::LoadTx(..) | Op::StoreTx(..))));
        // ... but the transactional clone instruments them.
        assert!(f.tx.iter().any(|op| matches!(op, Op::StoreTx(..))));
    }

    #[test]
    fn tx_clone_elides_own_allocations() {
        // A non-inlined callee allocating inside: its tx clone can still
        // elide the init store (assume-atomic analysis).
        let p = parse("fn mk() { var p = malloc(8); p[0] = 5; return p; }").unwrap();
        let c = compile(&p, OptLevel::CaptureAnalysis);
        let f = &c.funcs[0];
        assert!(
            f.tx.iter().any(|op| matches!(op, Op::StoreDirect(..))),
            "tx clone should elide the captured init store"
        );
        assert!(
            f.normal.iter().any(|op| matches!(op, Op::StoreDirect(..))),
            "normal version is plain anyway"
        );
    }

    #[test]
    fn branch_targets_are_consistent() {
        let p = parse(
            "fn f(n) { var i = 0; var acc = 0; while (i < n) { if (i % 2 == 0) { acc = acc + i; } else { acc = acc + 1; } i = i + 1; } return acc; }",
        )
        .unwrap();
        let c = compile(&p, OptLevel::Naive);
        for op in &c.funcs[0].normal {
            match op {
                Op::Jmp(t) | Op::Brz(_, t) => {
                    assert!((*t as usize) <= c.funcs[0].normal.len());
                }
                _ => {}
            }
        }
    }
}
