//! Property-based compiler correctness: randomly generated TL programs
//! must compute identical results under naive instrumentation and under
//! capture analysis — i.e. the static elision is semantics-preserving —
//! and the analysis must never elide more than the precise runtime
//! analysis observes as captured.

use proptest::prelude::*;
use stm::{StmRuntime, TxConfig};
use txcc::{build, OptLevel, Vm};
use txmem::MemConfig;

/// A tiny program generator: a single function with `nblocks` pointer
/// variables (some malloc'ed inside the atomic block = captured, some
/// aliases of the shared parameter = not), followed by a random sequence of
/// stores and loads between them, all inside one transaction. The shared
/// buffer is the observable output.
#[derive(Clone, Debug)]
enum GenOp {
    /// blocks[dst][idx] = const
    StoreConst { dst: u8, idx: u8, val: u16 },
    /// blocks[dst][i] = blocks[src][j]
    Move { dst: u8, di: u8, src: u8, si: u8 },
    /// shared[k] = blocks[src][j]
    Publish { k: u8, src: u8, si: u8 },
}

fn genop() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), any::<u16>()).prop_map(|(dst, idx, val)| GenOp::StoreConst {
            dst,
            idx,
            val
        }),
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(dst, di, src, si)| GenOp::Move { dst, di, src, si }),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(k, src, si)| GenOp::Publish {
            k,
            src,
            si
        }),
    ]
}

const NBLOCKS: u8 = 4;
const BLOCK_WORDS: u8 = 4;
const SHARED_WORDS: u8 = 8;

/// Render the op list as TL source. `captured_mask` decides which pointer
/// variables are malloc'ed inside the transaction vs. aliases into the
/// shared buffer.
fn render(ops: &[GenOp], captured_mask: u8) -> String {
    let mut src = String::from("fn f(s) {\n  atomic {\n");
    for b in 0..NBLOCKS {
        if captured_mask & (1 << b) != 0 {
            src.push_str(&format!(
                "    var p{b} = malloc({});\n",
                BLOCK_WORDS as u64 * 8
            ));
        } else {
            // Alias into the shared buffer (disjoint 4-word windows so
            // blocks never overlap). `+` is raw byte arithmetic in TL.
            src.push_str(&format!(
                "    var p{b} = s + {};\n",
                b as u64 * BLOCK_WORDS as u64 * 8
            ));
        }
    }
    for op in ops {
        match *op {
            GenOp::StoreConst { dst, idx, val } => {
                let d = dst % NBLOCKS;
                let i = idx % BLOCK_WORDS;
                src.push_str(&format!("    p{d}[{i}] = {val};\n"));
            }
            GenOp::Move {
                dst,
                di,
                src: s,
                si,
            } => {
                let d = dst % NBLOCKS;
                let di = di % BLOCK_WORDS;
                let s = s % NBLOCKS;
                let si = si % BLOCK_WORDS;
                src.push_str(&format!("    p{d}[{di}] = p{s}[{si}];\n"));
            }
            GenOp::Publish { k, src: s, si } => {
                let k = k % SHARED_WORDS + (NBLOCKS * BLOCK_WORDS); // past alias windows
                let s = s % NBLOCKS;
                let si = si % BLOCK_WORDS;
                src.push_str(&format!("    s[{k}] = p{s}[{si}];\n"));
            }
        }
    }
    src.push_str("  }\n  return 0;\n}\n");
    src
}

fn run_program(src: &str, opt: OptLevel) -> (Vec<u64>, u64) {
    let prog = build(src, opt).unwrap();
    let rt = StmRuntime::new(MemConfig::small(), TxConfig::runtime_tree_full());
    let total_words = (NBLOCKS * BLOCK_WORDS + SHARED_WORDS * 2) as u64;
    let shared = rt.alloc_global(total_words * 8);
    let mut w = rt.spawn_worker();
    let mut vm = Vm::new(&prog);
    vm.run(&mut w, "f", &[shared.raw()]);
    let snapshot: Vec<u64> = (0..total_words).map(|i| w.load(shared.word(i))).collect();
    let runtime_elided = w.stats.reads.elided() + w.stats.writes.elided();
    (snapshot, runtime_elided)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn capture_analysis_preserves_semantics(
        ops in proptest::collection::vec(genop(), 1..20),
        captured_mask in any::<u8>(),
    ) {
        let src = render(&ops, captured_mask);
        let (mem_naive, _) = run_program(&src, OptLevel::Naive);
        let (mem_opt, _) = run_program(&src, OptLevel::CaptureAnalysis);
        prop_assert_eq!(mem_naive, mem_opt, "program:\n{}", src);
    }

    #[test]
    fn static_elision_never_exceeds_runtime_ground_truth(
        ops in proptest::collection::vec(genop(), 1..20),
        captured_mask in any::<u8>(),
    ) {
        let src = render(&ops, captured_mask);
        // Static count of elided accesses...
        let prog = build(&src, OptLevel::CaptureAnalysis).unwrap();
        let static_elided = prog.stats.elided as u64;
        // ...must be bounded by what the precise runtime analysis sees when
        // the naive build executes (each site executes exactly once here).
        let naive = build(&src, OptLevel::Naive).unwrap();
        let rt = StmRuntime::new(MemConfig::small(), TxConfig::runtime_tree_full());
        let total_words = (NBLOCKS * BLOCK_WORDS + SHARED_WORDS * 2) as u64;
        let shared = rt.alloc_global(total_words * 8);
        let mut w = rt.spawn_worker();
        let mut vm = Vm::new(&naive);
        vm.run(&mut w, "f", &[shared.raw()]);
        let runtime_elided = w.stats.reads.elided() + w.stats.writes.elided();
        prop_assert!(
            static_elided <= runtime_elided,
            "static {} > runtime {} — unsound elision!\n{}",
            static_elided, runtime_elided, src
        );
    }

    #[test]
    fn all_captured_blocks_means_only_publishes_take_barriers(
        ops in proptest::collection::vec(genop(), 1..16),
    ) {
        // Every block malloc'ed in-tx: the only barriers left after capture
        // analysis are the s[k] publishes (and none if there are none).
        let src = render(&ops, 0xFF);
        let prog = build(&src, OptLevel::CaptureAnalysis).unwrap();
        let publishes = ops.iter().filter(|o| matches!(o, GenOp::Publish { .. })).count();
        prop_assert_eq!(prog.stats.barriers, publishes, "{}", src);
    }
}
