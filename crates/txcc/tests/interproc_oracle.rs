//! Property-based soundness oracle for the interprocedural analysis
//! (mirroring `dispatch_equiv`'s differential style): randomly generated
//! TL programs with *helper functions* — guarded constructors, parameter
//! initializers, pointer-returning factories, cross-helper aliasing —
//! must satisfy, on every generated program:
//!
//! 1. **semantics** — naive, intraprocedural and interprocedural builds
//!    produce bit-identical shared memory;
//! 2. **superset** — the interprocedural pass elides every site the
//!    intraprocedural pass elides ([`txcc::interproc::check_superset`],
//!    also asserted inside `analyze_program` in debug builds);
//! 3. **oracle** — running the *naive* build under the runtime's precise
//!    capture tracker (`TxConfig::classify` + [`txcc::SiteAudit`]), every
//!    site the interprocedural pass marks `Elide` — in the matching
//!    compilation context — is observed captured on **all** executions.
//!    An uncaptured execution of an elided site would be a
//!    miscompilation; this is the machine-checked proof there is none.

use proptest::prelude::*;
use stm::{StmRuntime, TxConfig};
use txcc::{build, interproc, OptLevel, Verdict, Vm};
use txmem::MemConfig;

const BLOCK_WORDS: u64 = 4;
const SHARED_WORDS: u64 = 24;

/// One statement of a generated helper body.
#[derive(Clone, Debug)]
enum HOp {
    /// `p<i>[idx] = const`
    StoreConst { p: u8, idx: u8, v: u16 },
    /// `p<i>[idx] = p<j>` — parameter pointers cross-stored.
    StoreParam { p: u8, idx: u8, q: u8 },
    /// `if (p1 == 999983) { return 0; }` — a validation guard that is
    /// never taken dynamically but statically poisons returns-captured.
    Guard,
}

/// What the helper returns.
#[derive(Clone, Copy, Debug)]
enum HRet {
    Param0,
    Param1,
    FreshBlock,
    Const,
}

#[derive(Clone, Debug)]
struct Helper {
    ops: Vec<HOp>,
    ret: HRet,
}

/// One statement of `main`'s atomic block.
#[derive(Clone, Debug)]
enum MOp {
    /// `var b<k> = malloc(32);`
    Alloc,
    /// `var r<k> = h<h>(<ptr arg>, <ptr arg>);`
    Call { h: u8, a0: u8, a1: u8 },
    /// `var r<k> = h<h>(<ptr arg>, <ptr arg>, 5);` — arity-mismatched
    /// call: the VM drops the extra argument into a scratch register and
    /// executes the helper normally, but the analysis must treat the edge
    /// conservatively (regression: these edges were once dropped from the
    /// call records, leaving `param_captured` unsoundly optimistic).
    CallExtra { h: u8, a0: u8, a1: u8 },
    /// `<ptr>[idx] = const;`
    Store { base: u8, idx: u8, v: u16 },
    /// `var l<k> = <ptr>[idx];` (loaded values are data, never bases)
    Load { base: u8, idx: u8 },
    /// `s[16 + k] = <ptr>;`
    Publish { k: u8, src: u8 },
}

fn helper_strategy() -> impl Strategy<Value = Helper> {
    let op = prop_oneof![
        (any::<u8>(), any::<u8>(), any::<u16>()).prop_map(|(p, idx, v)| HOp::StoreConst {
            p,
            idx,
            v
        }),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(p, idx, q)| HOp::StoreParam {
            p,
            idx,
            q
        }),
        Just(HOp::Guard),
    ];
    (
        proptest::collection::vec(op, 0..6),
        prop_oneof![
            Just(HRet::Param0),
            Just(HRet::Param1),
            Just(HRet::FreshBlock),
            Just(HRet::Const),
        ],
    )
        .prop_map(|(ops, ret)| Helper { ops, ret })
}

fn mop_strategy() -> impl Strategy<Value = MOp> {
    prop_oneof![
        Just(MOp::Alloc),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(h, a0, a1)| MOp::Call { h, a0, a1 }),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(h, a0, a1)| MOp::CallExtra {
            h,
            a0,
            a1
        }),
        (any::<u8>(), any::<u8>(), any::<u16>()).prop_map(|(base, idx, v)| MOp::Store {
            base,
            idx,
            v
        }),
        (any::<u8>(), any::<u8>()).prop_map(|(base, idx)| MOp::Load { base, idx }),
        (any::<u8>(), any::<u8>()).prop_map(|(k, src)| MOp::Publish { k, src }),
    ]
}

/// Render the generated ops as a TL program. Pointer-valued names are
/// tracked so every dereference is dynamically valid: bases come from
/// `s`, allocated blocks, and helper results whose return is provably a
/// pointer (helpers only ever receive pointer arguments, and the guard's
/// `return 0` branch never executes — arguments are real addresses, not
/// the sentinel).
fn render(helpers: &[Helper], mops: &[MOp]) -> String {
    let mut src = String::new();
    for (i, h) in helpers.iter().enumerate() {
        src.push_str(&format!("fn h{i}(p0, p1) {{\n"));
        let mut fresh = false;
        if matches!(h.ret, HRet::FreshBlock) {
            src.push_str(&format!("  var m = malloc({});\n", BLOCK_WORDS * 8));
            fresh = true;
        }
        for op in &h.ops {
            match *op {
                HOp::StoreConst { p, idx, v } => {
                    let p = p % 2;
                    src.push_str(&format!("  p{p}[{}] = {v};\n", idx % BLOCK_WORDS as u8));
                }
                HOp::StoreParam { p, idx, q } => {
                    let p = p % 2;
                    let q = q % 2;
                    src.push_str(&format!("  p{p}[{}] = p{q};\n", idx % BLOCK_WORDS as u8));
                }
                HOp::Guard => {
                    src.push_str("  if (p1 == 999983) { return 0; }\n");
                }
            }
        }
        match h.ret {
            HRet::Param0 => src.push_str("  return p0;\n"),
            HRet::Param1 => src.push_str("  return p1;\n"),
            HRet::FreshBlock if fresh => src.push_str("  return m;\n"),
            HRet::FreshBlock | HRet::Const => src.push_str("  return 7;\n"),
        }
        src.push_str("}\n");
    }
    src.push_str("fn main(s, n) {\n  atomic {\n");
    // Pointer-valued names available as bases/arguments; "s" is always
    // index 0.
    let mut ptrs: Vec<String> = vec!["s".into()];
    let mut next = 0usize;
    for op in mops {
        match *op {
            MOp::Alloc => {
                let name = format!("b{next}");
                next += 1;
                src.push_str(&format!("    var {name} = malloc({});\n", BLOCK_WORDS * 8));
                ptrs.push(name);
            }
            MOp::Call { h, a0, a1 } | MOp::CallExtra { h, a0, a1 } => {
                if helpers.is_empty() {
                    continue;
                }
                let extra = matches!(op, MOp::CallExtra { .. });
                let h = (h as usize) % helpers.len();
                let a0 = &ptrs[(a0 as usize) % ptrs.len()];
                let a1 = &ptrs[(a1 as usize) % ptrs.len()];
                let name = format!("r{next}");
                next += 1;
                let tail = if extra { ", 5" } else { "" };
                src.push_str(&format!("    var {name} = h{h}({a0}, {a1}{tail});\n"));
                // The result is a pointer unless the helper returns a
                // constant; only pointer results join the base pool.
                if !matches!(helpers[h].ret, HRet::Const) {
                    ptrs.push(name);
                }
            }
            MOp::Store { base, idx, v } => {
                let b = &ptrs[(base as usize) % ptrs.len()];
                src.push_str(&format!("    {b}[{}] = {v};\n", idx % BLOCK_WORDS as u8));
            }
            MOp::Load { base, idx } => {
                let b = &ptrs[(base as usize) % ptrs.len()];
                let name = format!("l{next}");
                next += 1;
                src.push_str(&format!(
                    "    var {name} = {b}[{}];\n",
                    idx % BLOCK_WORDS as u8
                ));
            }
            MOp::Publish { k, src: sp } => {
                let p = &ptrs[(sp as usize) % ptrs.len()];
                src.push_str(&format!(
                    "    s[{}] = {p};\n",
                    16 + (k as u64 % (SHARED_WORDS - 16))
                ));
            }
        }
    }
    src.push_str("  }\n  return 0;\n}\n");
    src
}

/// Run one compiled build; returns the shared snapshot.
fn run_snapshot(prog: &txcc::CompiledProgram) -> Vec<u64> {
    let rt = StmRuntime::new(MemConfig::small(), TxConfig::default());
    let shared = rt.alloc_global(SHARED_WORDS * 8);
    let mut w = rt.spawn_worker();
    let mut vm = Vm::new(prog);
    vm.run(&mut w, "main", &[shared.raw(), 1]);
    (0..SHARED_WORDS).map(|i| w.load(shared.word(i))).collect()
}

/// The review repro for the dropped-edge unsoundness: `g` is called with
/// an exact captured argument *and* with an arity-mismatched call passing
/// the shared parameter. The VM executes both, so `g`'s clone must keep
/// its barriers; the audit oracle proves no elided site ever executes
/// against uncaptured memory.
#[test]
fn arity_mismatched_call_is_not_unsoundly_elided() {
    let src = "fn g(p) { p[0] = 1; if (p[0] > 100) { return 0; } return 1; }\n\
               fn main(s, n) { atomic { var q = malloc(8); var z = g(q); var w = g(s, 0); } return 0; }";
    let mut prog = txcc::parse(src).unwrap();
    txcc::capture::desugar_address_taken(&mut prog);
    let inter = interproc::analyze_program(&prog);
    interproc::check_superset(&prog, &inter).unwrap();

    let naive = txcc::compile(&prog, OptLevel::Naive);
    let iproc = txcc::compile(&prog, OptLevel::CaptureInterproc);
    assert_eq!(
        run_snapshot(&naive),
        run_snapshot(&iproc),
        "semantics diverged"
    );

    let mut cfg = TxConfig::default();
    cfg.classify = true;
    let rt = StmRuntime::new(MemConfig::small(), cfg);
    let shared = rt.alloc_global(SHARED_WORDS * 8);
    let mut w = rt.spawn_worker();
    let mut vm = Vm::with_audit(&naive, prog.n_sites);
    vm.run(&mut w, "main", &[shared.raw(), 1]);
    let audit = vm.audit.take().unwrap();
    for site in 0..prog.n_sites {
        if inter.tx.verdicts[site] == Verdict::Elide {
            assert!(
                audit.tx[site].always_captured(),
                "site {site} elided (tx clone) but observed uncaptured"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn interproc_elisions_are_sound_and_semantics_preserving(
        helpers in proptest::collection::vec(helper_strategy(), 0..3),
        mops in proptest::collection::vec(mop_strategy(), 1..14),
    ) {
        let src = render(&helpers, &mops);

        // Analyses over the shared, desugared, non-inlined program.
        let mut prog = txcc::parse(&src).unwrap();
        txcc::capture::desugar_address_taken(&mut prog);
        let inter = interproc::analyze_program(&prog);
        prop_assert!(
            interproc::check_superset(&prog, &inter).is_ok(),
            "superset violated\n{src}"
        );

        // Semantics: all three pipelines agree on final shared memory.
        let naive = txcc::compile(&prog, OptLevel::Naive);
        let intra = txcc::compile(&prog, OptLevel::CaptureAnalysis);
        let iproc = txcc::compile(&prog, OptLevel::CaptureInterproc);
        let inlined = build(&src, OptLevel::CaptureAnalysis).unwrap();
        let m_naive = run_snapshot(&naive);
        prop_assert_eq!(&m_naive, &run_snapshot(&intra), "intra diverged\n{}", src);
        prop_assert_eq!(&m_naive, &run_snapshot(&iproc), "interproc diverged\n{}", src);
        prop_assert_eq!(&m_naive, &run_snapshot(&inlined), "inlined diverged\n{}", src);

        // Oracle: audited naive run; every interprocedural Elide site must
        // be observed captured on all executions in its context.
        let mut cfg = TxConfig::default();
        cfg.classify = true;
        let rt = StmRuntime::new(MemConfig::small(), cfg);
        let shared = rt.alloc_global(SHARED_WORDS * 8);
        let mut w = rt.spawn_worker();
        let mut vm = Vm::with_audit(&naive, prog.n_sites);
        vm.run(&mut w, "main", &[shared.raw(), 1]);
        let audit = vm.audit.take().unwrap();
        for site in 0..prog.n_sites {
            if inter.normal.verdicts[site] == Verdict::Elide {
                prop_assert!(
                    audit.normal[site].always_captured(),
                    "site {site} elided (normal) but observed uncaptured\n{src}"
                );
            }
            if inter.tx.verdicts[site] == Verdict::Elide {
                prop_assert!(
                    audit.tx[site].always_captured(),
                    "site {site} elided (tx clone) but observed uncaptured\n{src}"
                );
            }
        }

        // Monotonicity of the whole pipeline, dynamically: the interproc
        // build executes no more barriers than the intraproc build.
        let count_tx = |p: &txcc::CompiledProgram| {
            let rt = StmRuntime::new(MemConfig::small(), TxConfig::default());
            let shared = rt.alloc_global(SHARED_WORDS * 8);
            let mut w = rt.spawn_worker();
            let mut vm = Vm::new(p);
            vm.run(&mut w, "main", &[shared.raw(), 1]);
            vm.stats.tx_loads + vm.stats.tx_stores
        };
        prop_assert!(count_tx(&iproc) <= count_tx(&intra), "{}", src);
    }
}
