//! Property-based tests for the allocation-log data structures.
//!
//! The central safety property from the paper (§3.1.2): capture analysis may
//! be *arbitrarily inaccurate* as long as it is **conservative** — it may
//! miss captured memory (false negatives, costing only performance) but must
//! never claim capture for memory that was not allocated by the transaction
//! (false positives, which would elide necessary barriers and break
//! isolation). The tree must additionally be *precise*.

use capture::{AddrFilter, AllocLog, LogImpl, LogKind, RangeArray, RangeTree};
use proptest::prelude::*;

const WORD: u64 = 8;

/// A reference model: a plain list of disjoint ranges.
#[derive(Default, Clone)]
struct Model {
    ranges: Vec<(u64, u64, u32)>,
}

impl Model {
    fn insert(&mut self, start: u64, len: u64, level: u32) {
        self.ranges.push((start, start + len, level));
    }
    fn remove(&mut self, start: u64) {
        self.ranges.retain(|&(s, _, _)| s != start);
    }
    fn query(&self, addr: u64) -> Option<u32> {
        self.ranges
            .iter()
            .find(|&&(s, e, _)| addr >= s && addr < e)
            .map(|&(_, _, l)| l)
    }
}

#[derive(Clone, Debug)]
enum Op {
    Insert { slot: u8, words: u8, level: u8 },
    Remove { slot: u8 },
    Clear,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u8>(), 1..16u8, 1..4u8).prop_map(|(slot, words, level)| Op::Insert {
                slot,
                words,
                level
            }),
            any::<u8>().prop_map(|slot| Op::Remove { slot }),
            Just(Op::Clear),
        ],
        0..60,
    )
}

/// Disjoint 4 KiB slots so ranges never overlap (the allocator guarantees
/// disjointness in the real system).
fn slot_base(slot: u8) -> u64 {
    4096 + slot as u64 * 4096
}

fn run_ops(log: &mut dyn AllocLog, model: &mut Model, ops: &[Op], live: &mut [bool; 256]) {
    for op in ops {
        match *op {
            Op::Insert { slot, words, level } => {
                if !live[slot as usize] {
                    let start = slot_base(slot);
                    let len = words as u64 * WORD;
                    log.insert(start, len, level as u32);
                    model.insert(start, len, level as u32);
                    live[slot as usize] = true;
                }
            }
            Op::Remove { slot } => {
                if live[slot as usize] {
                    let start = slot_base(slot);
                    log.remove(start, 16 * WORD);
                    model.remove(start);
                    live[slot as usize] = false;
                }
            }
            Op::Clear => {
                log.clear();
                model.ranges.clear();
                live.fill(false);
            }
        }
    }
}

fn probe_addrs() -> Vec<u64> {
    let mut v = Vec::new();
    for slot in 0..=255u8 {
        let b = slot_base(slot);
        v.extend([b, b + WORD, b + 15 * WORD, b + 16 * WORD, b + 2048]);
    }
    v.push(0);
    v.push(u64::MAX / 2 / WORD * WORD);
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tree_is_precise(ops in ops()) {
        let mut t = RangeTree::new();
        let mut m = Model::default();
        let mut live = [false; 256];
        run_ops(&mut t, &mut m, &ops, &mut live);
        for a in probe_addrs() {
            prop_assert_eq!(t.query(a), m.query(a), "addr {}", a);
        }
        prop_assert_eq!(t.entries(), m.ranges.len());
    }

    #[test]
    fn array_is_conservative(ops in ops()) {
        let mut arr: RangeArray<4> = RangeArray::new();
        let mut m = Model::default();
        let mut live = [false; 256];
        run_ops(&mut arr, &mut m, &ops, &mut live);
        for a in probe_addrs() {
            if let Some(level) = arr.query(a) {
                // Any hit must be a true hit with the right level.
                prop_assert_eq!(m.query(a), Some(level), "false positive at {}", a);
            }
        }
    }

    #[test]
    fn filter_is_conservative(ops in ops()) {
        let mut f = AddrFilter::with_log2_entries(8);
        let mut m = Model::default();
        let mut live = [false; 256];
        run_ops(&mut f, &mut m, &ops, &mut live);
        for a in probe_addrs() {
            if let Some(level) = f.query(a) {
                prop_assert_eq!(m.query(a), Some(level), "false positive at {}", a);
            }
        }
    }

    #[test]
    fn filter_exact_for_single_block(slot in 0..255u8, words in 1..16u64) {
        // A single block cannot self-collide destructively in a table much
        // larger than the block: every word must be found.
        let mut f = AddrFilter::with_log2_entries(12);
        f.insert(slot_base(slot), words * WORD, 1);
        for w in 0..words {
            prop_assert_eq!(f.query(slot_base(slot) + w * WORD), Some(1));
        }
        prop_assert_eq!(f.query(slot_base(slot) + words * WORD), None);
    }

    #[test]
    fn all_impls_agree_on_hits_after_few_inserts(
        blocks in proptest::collection::vec((0..64u8, 1..8u8), 1..4)
    ) {
        // With at most 3 disjoint blocks, even the lossy structures are
        // exact; all three must agree with each other.
        let mut impls: Vec<LogImpl> = LogKind::ALL.iter().map(|&k| LogImpl::new(k)).collect();
        let mut seen = std::collections::HashSet::new();
        for &(slot, words) in &blocks {
            if seen.insert(slot) {
                for l in impls.iter_mut() {
                    l.insert(slot_base(slot), words as u64 * WORD, 1);
                }
            }
        }
        for slot in 0..64u8 {
            let a = slot_base(slot);
            let answers: Vec<_> = impls.iter().map(|l| l.query(a)).collect();
            // Tree and array are both exact at <= 4 blocks and must agree.
            prop_assert_eq!(answers[0], answers[1],
                "tree and array disagree at slot {}", slot);
            // The filter may lose marks to cross-block slot collisions but
            // must stay a subset of the precise answer.
            if answers[2].is_some() {
                prop_assert_eq!(answers[2], answers[0],
                    "filter false positive at slot {}", slot);
            }
        }
    }
}
