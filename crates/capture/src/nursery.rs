//! The nursery classification structure: transaction-local *bump-region*
//! capture analysis.
//!
//! The paper's cheapest runtime check is the stack one, because stack
//! capture is a *contiguous-region* property: two register compares against
//! `[sp, start_sp)` answer it. [`NurseryLog`] buys the heap the same
//! property. The STM carves the transaction a contiguous bump region on its
//! first transactional allocation and bump-allocates small blocks inside
//! it, so "did the current transaction allocate this heap address?" becomes
//! the same two-compare range test:
//!
//! ```text
//! captured  ⇔  nursery_lo <= addr < nursery_bump
//! ```
//!
//! Nesting (paper §2.2.1, partial abort) adds one more compare. Because the
//! bump pointer only moves up within a region, *allocation order is address
//! order*: a per-level high-watermark `marks[d-1]` (the bump value when the
//! depth-`d` transaction began) splits the scalar range by level, and
//!
//! ```text
//! current-level  ⇔  addr >= marks[depth - 1]
//! ```
//!
//! distinguishes `Capture::Level(depth)` (plain access) from an
//! ancestor-level hit (reads plain, writes undo-logged), exactly mirroring
//! the `sp_inner` compare of the stack check.
//!
//! `NurseryLog` is a *policy component*, not a standalone
//! [`CapturePolicy`](crate::CapturePolicy): everything the scalar range
//! cannot represent — blocks in regions the nursery chained away from,
//! blocks survived past a hole punched by an in-transaction free, large
//! blocks — is *demoted* to one of the three paper logs (tree / array /
//! filter), which the caller keeps alongside. [`NurseryLog::classify_with`]
//! is that composition: scalar range first, fallback log second.
//!
//! # Invariants
//!
//! * `lo <= marks[0] <= marks[1] <= ... <= bump <= hi` whenever a region is
//!   active; all zero when empty.
//! * Every mark is clamped up to `lo` when a hole punch raises `lo`:
//!   clamping never changes a verdict, because every address that survives
//!   in the scalar range is `>= lo`, and a mark below `lo` was below every
//!   surviving address already.
//! * The regions list records every byte range carved for this transaction
//!   (the active one last), so an abort can return *whole regions* to the
//!   allocator in O(1) per region instead of walking per-block free lists.

use crate::policy::{Capture, CapturePolicy};

/// Bump-region capture state for one transaction. See the module docs for
/// the classification scheme; the owning transaction descriptor drives the
/// region lifecycle (carve / extend / chain / trim / recycle) because only
/// it can talk to the allocator.
#[derive(Debug, Default)]
pub struct NurseryLog {
    /// Lowest address still classified by the scalar range (raised past
    /// holes punched by in-transaction frees).
    lo: u64,
    /// Bump pointer: next allocation position, one past the last captured
    /// byte. `lo == bump` means the scalar range is empty.
    bump: u64,
    /// One past the end of the active region (`bump == hi` means full).
    hi: u64,
    /// Cached `marks.last()` so the hot current-level compare never touches
    /// the vector.
    inner: u64,
    /// Per-nesting-level high-watermarks: `marks[d-1]` is the bump value
    /// when the depth-`d` transaction began (non-decreasing).
    marks: Vec<u64>,
    /// Every `(start, len)` region carved for this transaction, active one
    /// last. `len` is shrunk to the used prefix when the nursery chains
    /// away from a region (its tail is recycled immediately).
    regions: Vec<(u64, u64)>,
}

impl NurseryLog {
    /// An empty nursery (no region, no levels).
    pub fn new() -> NurseryLog {
        NurseryLog::default()
    }

    /// Scalar range start (for the inline two-compare check).
    #[inline]
    pub fn lo(&self) -> u64 {
        self.lo
    }

    /// Scalar range end == bump pointer.
    #[inline]
    pub fn bump(&self) -> u64 {
        self.bump
    }

    /// Current-level watermark (`marks.last()`, cached).
    #[inline]
    pub fn inner(&self) -> u64 {
        self.inner
    }

    /// End of the active region.
    #[inline]
    pub fn hi(&self) -> u64 {
        self.hi
    }

    /// Unused bytes remaining in the active region.
    #[inline]
    pub fn room(&self) -> u64 {
        self.hi - self.bump
    }

    /// True once a region has been carved and not yet retired.
    #[inline]
    pub fn has_region(&self) -> bool {
        self.hi != 0
    }

    /// Number of regions carved so far this transaction.
    #[inline]
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// The carved regions, active one last.
    pub fn regions(&self) -> &[(u64, u64)] {
        &self.regions
    }

    /// Transaction begin: forget everything and open nesting level 1.
    pub fn begin(&mut self) {
        self.reset();
        self.marks.push(0);
    }

    /// Forget all state (transaction end; the caller has already recycled
    /// or published the regions).
    pub fn reset(&mut self) {
        self.lo = 0;
        self.bump = 0;
        self.hi = 0;
        self.inner = 0;
        self.marks.clear();
        self.regions.clear();
    }

    /// Enter a nested level: snapshot the bump as its watermark.
    pub fn push_level(&mut self) {
        self.marks.push(self.bump);
        self.inner = self.bump;
    }

    /// Leave a nested level on *commit*: blocks above the popped watermark
    /// now belong to the parent automatically (the parent's watermark is
    /// lower), which is exactly the §2.2.1 demotion.
    pub fn pop_level(&mut self) {
        self.marks.pop().expect("pop_level without matching push");
        self.inner = *self.marks.last().expect("outermost nursery mark");
    }

    /// Bump-allocate `total` bytes in the active region; `None` when it
    /// does not fit (caller extends, chains, or falls back).
    #[inline]
    pub fn try_alloc(&mut self, total: u64) -> Option<u64> {
        if self.hi - self.bump >= total {
            let a = self.bump;
            self.bump += total;
            Some(a)
        } else {
            None
        }
    }

    /// Start allocating from a freshly carved region `[start, start+len)`.
    /// All existing watermarks clamp to `start`: everything allocated in
    /// the new region postdates every open level, so every open level sees
    /// it as current-or-deeper.
    pub fn switch_region(&mut self, start: u64, len: u64) {
        self.regions.push((start, len));
        self.lo = start;
        self.bump = start;
        self.hi = start + len;
        for m in &mut self.marks {
            *m = start;
        }
        self.inner = start;
    }

    /// The active region was extended in place by `bytes` (contiguous
    /// frontier carve): the scalar range simply grows.
    pub fn extend_active(&mut self, bytes: u64) {
        debug_assert!(self.has_region());
        self.hi += bytes;
        self.regions.last_mut().expect("active region").1 += bytes;
    }

    /// Chain away from the active region: shrink its record to the used
    /// prefix and return the unused tail `(start, len)` for immediate
    /// recycling. The caller must demote the live scalar blocks to the
    /// fallback log *before* calling [`NurseryLog::switch_region`].
    pub fn retire_active(&mut self) -> (u64, u64) {
        debug_assert!(self.has_region());
        let tail = (self.bump, self.hi - self.bump);
        let last = self.regions.last_mut().expect("active region");
        last.1 = self.bump - last.0;
        self.hi = self.bump;
        tail
    }

    /// LIFO free: the block `[start, bump)` was the most recent allocation;
    /// hand its bytes straight back to the bump pointer.
    pub fn bump_back(&mut self, start: u64) {
        debug_assert!(start >= self.inner && start < self.bump);
        self.bump = start;
    }

    /// An in-transaction free punched the hole `[hole_lo, hole_hi)` out of
    /// the scalar range. The range shrinks to `[hole_hi, bump)` so future
    /// allocations stay on the scalar path; the caller demotes the live
    /// blocks of `[lo, hole_lo)` to the fallback log. Watermarks clamp up
    /// to the new `lo` (verdict-preserving, see module invariants).
    pub fn punch_hole(&mut self, hole_lo: u64, hole_hi: u64) {
        debug_assert!(self.lo <= hole_lo && hole_lo < hole_hi && hole_hi <= self.bump);
        self.lo = hole_hi;
        for m in &mut self.marks {
            if *m < hole_hi {
                *m = hole_hi;
            }
        }
        self.inner = *self.marks.last().expect("outermost nursery mark");
    }

    /// Partial abort of the innermost level when its region set is
    /// unchanged: every scalar block it allocated sits in `[mark, bump)`;
    /// reset the bump to reclaim them all at once. `lo` may exceed the
    /// popped mark when the aborted level punched a hole; the scalar range
    /// is then empty, which is exact (everything below was demoted).
    pub fn abort_level(&mut self) {
        let mark = self.marks.pop().expect("abort_level without push");
        self.bump = mark.max(self.lo);
        self.inner = *self.marks.last().expect("outermost nursery mark");
    }

    /// Drop the active region without touching the marks stack (partial
    /// abort that has to discard regions carved by the aborted level). The
    /// scalar range empties; the next allocation carves afresh. Marks clamp
    /// to zero to keep the ordering invariant.
    pub fn clear_active(&mut self, keep_regions: usize) {
        self.regions.truncate(keep_regions);
        self.lo = 0;
        self.bump = 0;
        self.hi = 0;
        for m in &mut self.marks {
            *m = 0;
        }
        self.inner = 0;
    }

    /// Scalar-range classification alone (no fallback): captured iff the
    /// address lies in `[lo, bump)`, at the deepest open level whose
    /// watermark it reaches.
    #[inline]
    pub fn classify(&self, addr: u64) -> Capture {
        if addr >= self.lo && addr < self.bump {
            // Level = number of watermarks at or below the address. Marks
            // are non-decreasing, so this is an upper-bound search; the
            // vector is as deep as the nesting, i.e. tiny.
            let level = self.marks.iter().take_while(|&&m| m <= addr).count() as u32;
            debug_assert!(level >= 1, "address in scalar range below every mark");
            Capture::Level(level)
        } else {
            Capture::No
        }
    }

    /// The composed nursery policy (module docs): the scalar range test
    /// first, the fallback paper log — which holds demoted, overflow and
    /// large blocks — second.
    #[inline]
    pub fn classify_with<F: CapturePolicy>(&self, fallback: &F, addr: u64) -> Capture {
        match self.classify(addr) {
            Capture::No => fallback.classify(addr),
            hit => hit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RangeTree;

    #[test]
    fn empty_nursery_captures_nothing() {
        let mut n = NurseryLog::new();
        n.begin();
        assert_eq!(n.classify(0), Capture::No);
        assert_eq!(n.classify(4096), Capture::No);
        assert!(!n.has_region());
    }

    #[test]
    fn bump_allocations_classify_at_their_level() {
        let mut n = NurseryLog::new();
        n.begin();
        n.switch_region(4096, 1024);
        let a = n.try_alloc(64).unwrap();
        assert_eq!(a, 4096);
        assert_eq!(n.classify(a), Capture::Level(1));
        assert_eq!(n.classify(a + 56), Capture::Level(1));
        n.push_level();
        let b = n.try_alloc(64).unwrap();
        assert_eq!(n.classify(b), Capture::Level(2));
        assert_eq!(
            n.classify(a),
            Capture::Level(1),
            "parent block stays level 1"
        );
        // Child commits: its block demotes to the parent automatically.
        n.pop_level();
        assert_eq!(n.classify(b), Capture::Level(1));
        // A later sibling sees the first child's block as ancestor-level.
        n.push_level();
        assert_eq!(n.classify(b), Capture::Level(1));
        let c = n.try_alloc(32).unwrap();
        assert_eq!(n.classify(c), Capture::Level(2));
        n.pop_level();
    }

    #[test]
    fn abort_level_reclaims_child_blocks() {
        let mut n = NurseryLog::new();
        n.begin();
        n.switch_region(4096, 1024);
        let a = n.try_alloc(64).unwrap();
        n.push_level();
        let b = n.try_alloc(64).unwrap();
        n.abort_level();
        assert_eq!(n.classify(b), Capture::No, "aborted child block");
        assert_eq!(n.classify(a), Capture::Level(1));
        assert_eq!(n.try_alloc(64).unwrap(), b, "bump space reclaimed");
    }

    #[test]
    fn lifo_free_bumps_back() {
        let mut n = NurseryLog::new();
        n.begin();
        n.switch_region(4096, 1024);
        let a = n.try_alloc(64).unwrap();
        let b = n.try_alloc(32).unwrap();
        n.bump_back(b);
        assert_eq!(n.classify(b), Capture::No);
        assert_eq!(n.classify(a), Capture::Level(1));
        assert_eq!(n.try_alloc(16).unwrap(), b);
    }

    #[test]
    fn hole_punch_keeps_the_upper_half_scalar() {
        let mut n = NurseryLog::new();
        n.begin();
        n.switch_region(4096, 1024);
        let a = n.try_alloc(64).unwrap();
        let freed = n.try_alloc(64).unwrap();
        let c = n.try_alloc(64).unwrap();
        n.punch_hole(freed, freed + 64);
        assert_eq!(n.classify(freed), Capture::No);
        assert_eq!(n.classify(freed + 32), Capture::No);
        assert_eq!(
            n.classify(a),
            Capture::No,
            "below-hole block left the scalar range"
        );
        assert_eq!(n.classify(c), Capture::Level(1), "above-hole block stays");
        // Future allocations continue on the scalar path.
        let d = n.try_alloc(16).unwrap();
        assert_eq!(n.classify(d), Capture::Level(1));
    }

    #[test]
    fn composition_falls_back_to_the_paper_log() {
        let mut n = NurseryLog::new();
        let mut tree = RangeTree::new();
        n.begin();
        n.switch_region(4096, 256);
        let a = n.try_alloc(64).unwrap();
        let f = n.try_alloc(64).unwrap();
        let c = n.try_alloc(64).unwrap();
        // Free `f` mid-range: the below-hole block `a` is demoted to the
        // fallback log (as the runtime does), then the hole is punched.
        use crate::AllocLog;
        tree.insert(a, 64, 1);
        n.punch_hole(f, f + 64);
        assert_eq!(n.classify(a), Capture::No);
        assert_eq!(n.classify_with(&tree, a), Capture::Level(1));
        assert_eq!(n.classify_with(&tree, f), Capture::No, "freed block");
        assert_eq!(n.classify_with(&tree, c), Capture::Level(1), "scalar hit");
        assert_eq!(n.classify_with(&tree, 9000), Capture::No);
    }

    #[test]
    fn retire_and_switch_regions() {
        let mut n = NurseryLog::new();
        n.begin();
        n.switch_region(4096, 256);
        n.try_alloc(64).unwrap();
        n.push_level();
        let (tail_start, tail_len) = n.retire_active();
        assert_eq!((tail_start, tail_len), (4096 + 64, 192));
        assert_eq!(n.regions(), &[(4096, 64)]);
        n.switch_region(16384, 256);
        let b = n.try_alloc(64).unwrap();
        assert_eq!(b, 16384);
        // Everything in the new region postdates both open levels.
        assert_eq!(n.classify(b), Capture::Level(2));
        assert_eq!(n.region_count(), 2);
        n.pop_level();
        assert_eq!(n.classify(b), Capture::Level(1));
    }

    #[test]
    fn extend_active_grows_in_place() {
        let mut n = NurseryLog::new();
        n.begin();
        n.switch_region(4096, 64);
        n.try_alloc(64).unwrap();
        assert_eq!(n.try_alloc(16), None);
        n.extend_active(64);
        assert_eq!(n.regions(), &[(4096, 128)]);
        let b = n.try_alloc(64).unwrap();
        assert_eq!(b, 4096 + 64);
        assert_eq!(n.classify(b), Capture::Level(1));
    }

    #[test]
    fn clear_active_empties_the_scalar_range() {
        let mut n = NurseryLog::new();
        n.begin();
        n.switch_region(4096, 256);
        let a = n.try_alloc(64).unwrap();
        n.push_level();
        n.switch_region(16384, 256); // child chained
        n.try_alloc(64).unwrap();
        n.marks.pop(); // abort path pops the level around clear_active
        n.inner = *n.marks.last().unwrap();
        n.clear_active(1);
        assert_eq!(
            n.classify(a),
            Capture::No,
            "demoted earlier; scalar is empty"
        );
        assert_eq!(n.classify(16384), Capture::No);
        assert_eq!(n.region_count(), 1);
        assert!(!n.has_region());
    }
}
