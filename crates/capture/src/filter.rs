use crate::log::{AllocLog, LogKind};

const WORD: u64 = 8;

/// The paper's filtering allocation log (§3.1.2): a hash table used as a
/// filter, extended from single-item filtering (paper ref \[8\]) to memory
/// ranges by marking *every word* of an allocated block.
///
/// Each slot stores the exact word address that hashed to it, so a lookup is
/// "a hash and a compare": collisions overwrite older marks, which produces
/// false negatives but never false positives — conservative in the direction
/// that is safe for barrier elision. As the paper notes, insertion and
/// removal cost is proportional to the block size, which makes the filter
/// comparatively expensive for large allocations.
///
/// Clearing at transaction end is O(1) via epoch tagging: each mark carries
/// the epoch in which it was written and `clear` simply advances the epoch
/// (a standard filtering trick; the paper does not specify its clearing
/// scheme).
pub struct AddrFilter {
    addrs: Box<[u64]>,
    meta: Box<[Meta]>,
    mask: u64,
    epoch: u32,
    live_hint: usize,
}

#[derive(Clone, Copy, Default)]
struct Meta {
    epoch: u32,
    level: u32,
}

#[inline]
fn hash(addr: u64) -> u64 {
    // Multiply-shift on the word index; works well for the allocator's
    // small-stride addresses.
    (addr / WORD).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl AddrFilter {
    /// Create a filter with `2^log2` slots (the paper uses a fixed-size
    /// table; 4096 slots is our default via [`crate::LogImpl`]).
    pub fn with_log2_entries(log2: u32) -> AddrFilter {
        let n = 1usize << log2;
        AddrFilter {
            addrs: vec![0; n].into_boxed_slice(),
            meta: vec![Meta::default(); n].into_boxed_slice(),
            mask: (n - 1) as u64,
            epoch: 1,
            live_hint: 0,
        }
    }

    #[inline]
    fn slot(&self, addr: u64) -> usize {
        ((hash(addr) >> 20) & self.mask) as usize
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.addrs.len()
    }
}

impl AllocLog for AddrFilter {
    fn insert(&mut self, start: u64, len: u64, level: u32) {
        debug_assert!(len > 0 && start.is_multiple_of(WORD));
        let mut a = start;
        let end = start + len;
        while a < end {
            let s = self.slot(a);
            self.addrs[s] = a;
            self.meta[s] = Meta {
                epoch: self.epoch,
                level,
            };
            a += WORD;
        }
        self.live_hint += (len / WORD) as usize;
    }

    fn remove(&mut self, start: u64, len: u64) {
        let mut a = start;
        let end = start + len;
        while a < end {
            let s = self.slot(a);
            if self.addrs[s] == a && self.meta[s].epoch == self.epoch {
                self.meta[s].epoch = 0;
            }
            a += WORD;
        }
    }

    #[inline]
    fn query(&self, addr: u64) -> Option<u32> {
        let s = self.slot(addr);
        if self.addrs[s] == addr && self.meta[s].epoch == self.epoch {
            Some(self.meta[s].level)
        } else {
            None
        }
    }

    fn clear(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wraparound: do a real wipe so stale epoch-0
            // marks cannot resurrect.
            self.addrs.fill(0);
            self.meta.fill(Meta::default());
            self.epoch = 1;
        }
        self.live_hint = 0;
    }

    fn entries(&self) -> usize {
        self.live_hint
    }

    fn kind(&self) -> LogKind {
        LogKind::Filter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_every_word_of_a_block() {
        let mut f = AddrFilter::with_log2_entries(12);
        f.insert(1024, 64, 1);
        for i in 0..8u64 {
            assert_eq!(f.query(1024 + i * 8), Some(1), "word {i}");
        }
        assert_eq!(f.query(1024 + 64), None);
        assert_eq!(f.query(1016), None);
    }

    #[test]
    fn no_false_positives_under_collisions() {
        let mut f = AddrFilter::with_log2_entries(4); // 16 slots: heavy collisions
        for i in 0..64u64 {
            f.insert(4096 + i * 8, 8, 1);
        }
        // Whatever survives, queries for never-inserted addresses must miss.
        for i in 0..64u64 {
            assert_eq!(f.query(131072 + i * 8), None);
        }
        // And surviving marks must be real.
        let mut hits = 0;
        for i in 0..64u64 {
            if f.query(4096 + i * 8).is_some() {
                hits += 1;
            }
        }
        assert!(hits <= 16, "cannot have more hits than slots");
        assert!(hits > 0, "direct-mapped table should retain something");
    }

    #[test]
    fn remove_clears_marks() {
        let mut f = AddrFilter::with_log2_entries(12);
        f.insert(2048, 32, 2);
        f.remove(2048, 32);
        for i in 0..4u64 {
            assert_eq!(f.query(2048 + i * 8), None);
        }
    }

    #[test]
    fn clear_is_constant_time_epoch_bump() {
        let mut f = AddrFilter::with_log2_entries(12);
        f.insert(512, 8, 1);
        f.clear();
        assert_eq!(f.query(512), None);
        // Fresh inserts after clear work.
        f.insert(512, 8, 3);
        assert_eq!(f.query(512), Some(3));
    }

    #[test]
    fn epoch_wraparound_is_safe() {
        let mut f = AddrFilter::with_log2_entries(4);
        f.insert(64, 8, 1);
        // (cannot loop 2^32 times in a test; force the wrap directly)
        f.epoch = u32::MAX;
        f.insert(128, 8, 2);
        f.clear(); // wraps to 0 -> real wipe -> epoch 1
        assert_eq!(f.query(128), None);
        assert_eq!(f.query(64), None);
        f.insert(64, 8, 5);
        assert_eq!(f.query(64), Some(5));
    }

    #[test]
    fn levels_survive() {
        let mut f = AddrFilter::with_log2_entries(12);
        f.insert(800, 8, 7);
        assert_eq!(f.query(800), Some(7));
    }
}
