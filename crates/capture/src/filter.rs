use crate::log::{AllocLog, LogKind};

const WORD: u64 = 8;

/// Default table size (log2 slots) when the filter is the selected policy.
/// 1024 interleaved 16-byte slots = 16 KiB — small enough to live in L1
/// next to the transaction's working set, which is what makes a filter hit
/// cheaper than the full shared barrier it elides. (The original layout —
/// two parallel 4096-entry arrays, 64 KiB total — cost two L2-resident
/// loads per probe and benchmarked *slower* than the slow path.)
pub const DEFAULT_FILTER_LOG2: u32 = 10;

/// The paper's filtering allocation log (§3.1.2): a hash table used as a
/// filter, extended from single-item filtering (paper ref \[8\]) to memory
/// ranges by marking *every word* of an allocated block.
///
/// Each slot stores the exact word address that hashed to it, so a lookup is
/// "a hash and a compare": collisions overwrite older marks, which produces
/// false negatives but never false positives — conservative in the direction
/// that is safe for barrier elision. As the paper notes, insertion and
/// removal cost is proportional to the block size, which makes the filter
/// comparatively expensive for large allocations.
///
/// Probe layout: the address and its epoch/level metadata are *interleaved*
/// in one 16-byte slot, so a probe touches exactly one cache line (the
/// original two-parallel-arrays layout took two misses per probe). The
/// probe index keeps the word index's *low bits sequential* and scrambles
/// only the window above them — consecutive words of a block land in
/// consecutive slots, so the per-word insert/remove sweep the paper calls
/// out as the filter's cost is a streaming write instead of a random
/// scatter, while distinct blocks still spread across the table.
///
/// Clearing at transaction end is O(1) via epoch tagging: each mark carries
/// the epoch in which it was written and `clear` simply advances the epoch
/// (a standard filtering trick; the paper does not specify its clearing
/// scheme).
pub struct AddrFilter {
    slots: Box<[Slot]>,
    mask: u64,
    /// log2 of the slot count: how far to shift the word index before
    /// mixing, so the sequential low bits survive.
    log2: u32,
    epoch: u32,
    live_hint: usize,
}

/// One probe target: the exact word address marked here, plus the epoch the
/// mark was written in and the allocating nesting level.
#[derive(Clone, Copy, Default)]
struct Slot {
    addr: u64,
    epoch: u32,
    level: u32,
}

impl AddrFilter {
    /// Create a filter with `2^log2` slots ([`DEFAULT_FILTER_LOG2`] when
    /// selected as the active policy; `0`, a single slot, when not).
    pub fn with_log2_entries(log2: u32) -> AddrFilter {
        let n = 1usize << log2;
        AddrFilter {
            slots: vec![Slot::default(); n].into_boxed_slice(),
            mask: (n - 1) as u64,
            log2,
            epoch: 1,
            live_hint: 0,
        }
    }

    #[inline]
    fn slot(&self, addr: u64) -> usize {
        // Sequential low bits + multiplicatively mixed window: the word
        // index's bottom `log2` bits index within a table-sized window,
        // and the bits above pick (and scramble) the window placement.
        let w = addr >> 3;
        let window = (w >> self.log2).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (w.wrapping_add(window) & self.mask) as usize
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

impl AllocLog for AddrFilter {
    fn insert(&mut self, start: u64, len: u64, level: u32) {
        debug_assert!(len > 0 && start.is_multiple_of(WORD));
        // Consecutive words occupy consecutive slots (see `slot`), and the
        // mixed window changes only when the word index crosses a
        // table-size boundary — so a block insert is at most a couple of
        // straight-line sweeps with one slot computation each, not a hash
        // per word (the per-word marking cost the paper calls out).
        let epoch = self.epoch;
        let mut a = start;
        let end = start + len;
        while a < end {
            // Words until the next (w >> log2) boundary, capped at the end.
            let w = a >> 3;
            let to_boundary = (1u64 << self.log2) - (w & ((1 << self.log2) - 1));
            let run_end = end.min(a + to_boundary * WORD);
            let mut s = self.slot(a);
            while a < run_end {
                self.slots[s] = Slot {
                    addr: a,
                    epoch,
                    level,
                };
                s = (s + 1) & self.mask as usize;
                a += WORD;
            }
        }
        self.live_hint += (len / WORD) as usize;
    }

    fn remove(&mut self, start: u64, len: u64) {
        let epoch = self.epoch;
        let mut a = start;
        let end = start + len;
        while a < end {
            let w = a >> 3;
            let to_boundary = (1u64 << self.log2) - (w & ((1 << self.log2) - 1));
            let run_end = end.min(a + to_boundary * WORD);
            let mut s = self.slot(a);
            while a < run_end {
                if self.slots[s].addr == a && self.slots[s].epoch == epoch {
                    self.slots[s].epoch = 0;
                }
                s = (s + 1) & self.mask as usize;
                a += WORD;
            }
        }
    }

    #[inline]
    fn query(&self, addr: u64) -> Option<u32> {
        let s = self.slots[self.slot(addr)];
        if s.addr == addr && s.epoch == self.epoch {
            Some(s.level)
        } else {
            None
        }
    }

    fn clear(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wraparound: do a real wipe so stale epoch-0
            // marks cannot resurrect.
            self.slots.fill(Slot::default());
            self.epoch = 1;
        }
        self.live_hint = 0;
    }

    fn entries(&self) -> usize {
        self.live_hint
    }

    fn kind(&self) -> LogKind {
        LogKind::Filter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_every_word_of_a_block() {
        let mut f = AddrFilter::with_log2_entries(12);
        f.insert(1024, 64, 1);
        for i in 0..8u64 {
            assert_eq!(f.query(1024 + i * 8), Some(1), "word {i}");
        }
        assert_eq!(f.query(1024 + 64), None);
        assert_eq!(f.query(1016), None);
    }

    #[test]
    fn no_false_positives_under_collisions() {
        let mut f = AddrFilter::with_log2_entries(4); // 16 slots: heavy collisions
        for i in 0..64u64 {
            f.insert(4096 + i * 8, 8, 1);
        }
        // Whatever survives, queries for never-inserted addresses must miss.
        for i in 0..64u64 {
            assert_eq!(f.query(131072 + i * 8), None);
        }
        // And surviving marks must be real.
        let mut hits = 0;
        for i in 0..64u64 {
            if f.query(4096 + i * 8).is_some() {
                hits += 1;
            }
        }
        assert!(hits <= 16, "cannot have more hits than slots");
        assert!(hits > 0, "direct-mapped table should retain something");
    }

    #[test]
    fn remove_clears_marks() {
        let mut f = AddrFilter::with_log2_entries(12);
        f.insert(2048, 32, 2);
        f.remove(2048, 32);
        for i in 0..4u64 {
            assert_eq!(f.query(2048 + i * 8), None);
        }
    }

    #[test]
    fn clear_is_constant_time_epoch_bump() {
        let mut f = AddrFilter::with_log2_entries(12);
        f.insert(512, 8, 1);
        f.clear();
        assert_eq!(f.query(512), None);
        // Fresh inserts after clear work.
        f.insert(512, 8, 3);
        assert_eq!(f.query(512), Some(3));
    }

    #[test]
    fn epoch_wraparound_is_safe() {
        let mut f = AddrFilter::with_log2_entries(4);
        f.insert(64, 8, 1);
        // (cannot loop 2^32 times in a test; force the wrap directly)
        f.epoch = u32::MAX;
        f.insert(128, 8, 2);
        f.clear(); // wraps to 0 -> real wipe -> epoch 1
        assert_eq!(f.query(128), None);
        assert_eq!(f.query(64), None);
        f.insert(64, 8, 5);
        assert_eq!(f.query(64), Some(5));
    }

    #[test]
    fn levels_survive() {
        let mut f = AddrFilter::with_log2_entries(12);
        f.insert(800, 8, 7);
        assert_eq!(f.query(800), Some(7));
    }

    #[test]
    fn one_slot_table_is_safe_and_lossy() {
        // Unselected policies carry a single-slot filter; it must stay a
        // correct (if useless) filter, not shift by 64.
        let mut f = AddrFilter::with_log2_entries(0);
        assert_eq!(f.capacity(), 1);
        f.insert(64, 8, 1);
        assert_eq!(f.query(64), Some(1));
        f.insert(128, 8, 2);
        assert_eq!(f.query(64), None, "overwritten by the collision");
        assert_eq!(f.query(128), Some(2));
    }

    #[test]
    fn dense_small_strides_spread_over_slots() {
        // The allocator hands out small-stride addresses; the multiply-shift
        // hash must not funnel them into a few slots.
        let mut f = AddrFilter::with_log2_entries(DEFAULT_FILTER_LOG2);
        f.insert(1 << 20, 512 * 8, 1); // 512 consecutive words
        let mut hits = 0;
        for i in 0..512u64 {
            if f.query((1 << 20) + i * 8).is_some() {
                hits += 1;
            }
        }
        // With 1024 slots and 512 keys, a good hash keeps most marks alive.
        assert!(
            hits > 300,
            "only {hits}/512 marks survived: bad distribution"
        );
    }
}
