//! The `CapturePolicy` seam: the one interface the STM's barrier pipeline
//! needs from a capture-analysis structure (DESIGN.md §3).
//!
//! The barriers of "Optimizing Transactions for Captured Memory" ask a
//! single question per access — *was this address allocated by the current
//! transaction?* — and record allocations/frees as the transaction runs.
//! `CapturePolicy` captures exactly that contract so the STM core can be
//! **monomorphized** over the concrete structure: the runtime selects the
//! policy once (at runtime construction / worker spawn) and the barrier hot
//! path compiles down to direct, inlineable calls with no per-access
//! dispatch on [`LogKind`].
//!
//! Every [`AllocLog`] implementation is a `CapturePolicy` via the blanket
//! impl below, so [`RangeTree`], [`RangeArray`] and [`AddrFilter`] plug in
//! directly. [`LogImpl`] also implements the trait — through its per-call
//! `match` — which is precisely the *enum-dispatch reference path* the STM
//! keeps around (behind `TxConfig::reference_dispatch`) for differential
//! testing of the monomorphized pipeline.

use crate::log::{AllocLog, LogImpl, LogKind};

/// Verdict of a capture classification for one word address.
///
/// Carries the allocating nesting level (1 = outermost) rather than a
/// boolean, with the same semantics as [`AllocLog::query`]: a barrier that
/// finds the address captured at a level *shallower* than the current one
/// must still undo-log writes (paper §2.2.1, partial abort).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Capture {
    /// Not captured — the full STM barrier must run.
    No,
    /// Captured: allocated at the given nesting level.
    Level(u32),
}

impl Capture {
    /// Translate an [`AllocLog::query`] result.
    #[inline]
    pub fn from_query(q: Option<u32>) -> Capture {
        match q {
            Some(level) => Capture::Level(level),
            None => Capture::No,
        }
    }

    /// Was the address captured at *any* nesting level?
    #[inline]
    pub fn is_captured(self) -> bool {
        matches!(self, Capture::Level(_))
    }
}

/// What a barrier pipeline needs from a capture-analysis structure.
///
/// `classify` is the per-access hot call; `on_alloc`/`on_free` run per
/// transactional allocation event; `reset` runs once per transaction end.
/// Implementations must stay **conservative**: `classify` may miss captured
/// memory (costing only a redundant full barrier) but must never report
/// capture for memory the transaction did not allocate.
pub trait CapturePolicy {
    /// A transactional allocation of `[start, start+len)` at nesting
    /// `level` (1 = outermost).
    fn on_alloc(&mut self, start: u64, len: u64, level: u32);

    /// The block at `start` left the transaction's captured set (freed
    /// in-transaction, or its allocation was rolled back).
    fn on_free(&mut self, start: u64, len: u64);

    /// Was a word access at `addr` captured, and at which nesting level?
    fn classify(&self, addr: u64) -> Capture;

    /// Transaction end (commit or abort): forget everything.
    fn reset(&mut self);

    /// Live entries currently representable (diagnostics).
    fn live_entries(&self) -> usize;

    /// Which allocation-log structure backs this policy.
    fn policy_kind(&self) -> LogKind;

    /// Like [`CapturePolicy::classify`], additionally returning a
    /// *cacheable* residency range on a hit: a `[start, end)` the caller
    /// may keep checking inline (skipping this policy entirely) until the
    /// next `on_free`/`reset`/level change, because the policy guarantees
    /// every address in it stays captured at the returned level until
    /// then. **Lossy structures must return `None`** for the range: the
    /// [`AddrFilter`](crate::AddrFilter) can silently lose marks to later
    /// collisions, so a cached hit could claim capture the filter itself
    /// would no longer report. Precise structures (tree, array) return
    /// the containing block.
    #[inline]
    fn classify_cacheable(&self, addr: u64) -> (Capture, Option<(u64, u64)>) {
        (self.classify(addr), None)
    }

    /// Classify `addr` and return the exclusive end of the longest run
    /// `[addr, end)` sharing that verdict, clamped to `limit` (the caller's
    /// span end). One call covers a whole contiguous run, which is what lets
    /// ranged barriers classify once per run instead of once per word.
    ///
    /// The contract mirrors the conservatism of [`classify`]: every word of
    /// a returned *captured* run must be inside one logged block, and every
    /// word of a returned *not-captured* run must miss the log (holes from
    /// in-transaction frees bound the run). A policy that cannot prove more
    /// may always return `addr + 8` — a one-word run degenerates to the
    /// per-word barrier, never to a wrong answer. That is the default here,
    /// kept by the lossy [`AddrFilter`](crate::AddrFilter) (no range
    /// guarantee on hits, no enumerable boundaries on misses) and by the
    /// enum-dispatch reference [`LogImpl`].
    ///
    /// [`classify`]: CapturePolicy::classify
    #[inline]
    fn classify_run(&self, addr: u64, limit: u64) -> (Capture, u64) {
        debug_assert!(limit > addr);
        (self.classify(addr), addr + 8)
    }
}

/// Delegation from the [`AllocLog`] vocabulary; used by the per-structure
/// impls below (a blanket impl would forbid overriding
/// `classify_cacheable` per structure).
macro_rules! policy_via_alloc_log {
    () => {
        #[inline]
        fn on_alloc(&mut self, start: u64, len: u64, level: u32) {
            self.insert(start, len, level);
        }

        #[inline]
        fn on_free(&mut self, start: u64, len: u64) {
            self.remove(start, len);
        }

        #[inline]
        fn classify(&self, addr: u64) -> Capture {
            Capture::from_query(self.query(addr))
        }

        #[inline]
        fn reset(&mut self) {
            self.clear();
        }

        fn live_entries(&self) -> usize {
            self.entries()
        }

        fn policy_kind(&self) -> LogKind {
            self.kind()
        }
    };
}

impl CapturePolicy for crate::RangeTree {
    policy_via_alloc_log!();

    #[inline]
    fn classify_cacheable(&self, addr: u64) -> (Capture, Option<(u64, u64)>) {
        match self.query_range(addr) {
            Some((start, end, level)) => (Capture::Level(level), Some((start, end))),
            None => (Capture::No, None),
        }
    }

    #[inline]
    fn classify_run(&self, addr: u64, limit: u64) -> (Capture, u64) {
        debug_assert!(limit > addr);
        match self.query_range(addr) {
            // Hit: the containing block bounds the captured run.
            Some((_, end, level)) => (Capture::Level(level), end.min(limit)),
            // Miss: the successor block's start bounds the shared run.
            None => {
                let end = self.next_start_after(addr).map_or(limit, |s| s.min(limit));
                (Capture::No, end)
            }
        }
    }
}

impl<const N: usize> CapturePolicy for crate::RangeArray<N> {
    policy_via_alloc_log!();

    #[inline]
    fn classify_cacheable(&self, addr: u64) -> (Capture, Option<(u64, u64)>) {
        match self.query_range(addr) {
            Some((start, end, level)) => (Capture::Level(level), Some((start, end))),
            None => (Capture::No, None),
        }
    }

    #[inline]
    fn classify_run(&self, addr: u64, limit: u64) -> (Capture, u64) {
        debug_assert!(limit > addr);
        match self.query_range(addr) {
            Some((_, end, level)) => (Capture::Level(level), end.min(limit)),
            None => {
                let end = self.next_start_after(addr).map_or(limit, |s| s.min(limit));
                (Capture::No, end)
            }
        }
    }
}

/// The filter keeps the default `classify_cacheable` (no range): it is
/// lossy under collisions, so no residency guarantee can be given.
impl CapturePolicy for crate::AddrFilter {
    policy_via_alloc_log!();
}

/// The enum-dispatch reference policy: one runtime `match` per call, i.e.
/// the shape of the pre-monomorphization barrier pipeline. Kept for
/// differential tests (`TxConfig::reference_dispatch`) and as the
/// spawn-time selector's storage when a caller genuinely needs a
/// runtime-chosen log.
impl CapturePolicy for LogImpl {
    // Inherent methods, same vocabulary; keeps the default (cacheless)
    // `classify_cacheable`, as befits an oracle modeling per-call dispatch.
    policy_via_alloc_log!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AddrFilter, RangeArray, RangeTree};

    fn policy_roundtrip<P: CapturePolicy>(p: &mut P, kind: LogKind) {
        assert_eq!(p.policy_kind(), kind);
        assert_eq!(p.classify(4096), Capture::No);
        p.on_alloc(4096, 64, 2);
        assert_eq!(p.classify(4096), Capture::Level(2));
        assert_eq!(p.classify(4096 + 56), Capture::Level(2));
        assert_eq!(p.classify(4096 + 64), Capture::No);
        p.on_free(4096, 64);
        assert_eq!(p.classify(4096), Capture::No);
        p.on_alloc(8192, 8, 1);
        p.reset();
        assert_eq!(p.classify(8192), Capture::No);
        assert_eq!(p.live_entries(), 0);
    }

    #[test]
    fn all_structures_satisfy_the_policy_contract() {
        policy_roundtrip(&mut RangeTree::new(), LogKind::Tree);
        policy_roundtrip(&mut RangeArray::<4>::new(), LogKind::Array);
        policy_roundtrip(&mut AddrFilter::with_log2_entries(12), LogKind::Filter);
        for kind in LogKind::ALL {
            policy_roundtrip(&mut LogImpl::new(kind), kind);
        }
    }

    fn run_roundtrip<P: CapturePolicy>(p: &mut P, precise: bool) {
        p.on_alloc(4096, 64, 2);
        p.on_alloc(4224, 32, 1);
        let limit = 8192;
        let (cap, end) = p.classify_run(4096, limit);
        assert_eq!(cap, Capture::Level(2));
        if precise {
            assert_eq!(end, 4160, "captured run spans the whole block");
            // Miss between the blocks: the shared run stops at the next
            // block's start (hole detection).
            assert_eq!(p.classify_run(4160, limit), (Capture::No, 4224));
            // Miss after the last block: the shared run reaches the limit.
            assert_eq!(p.classify_run(4256, limit), (Capture::No, limit));
            // The caller's span end clamps both kinds of run.
            assert_eq!(p.classify_run(4096, 4128), (Capture::Level(2), 4128));
            assert_eq!(p.classify_run(4160, 4200), (Capture::No, 4200));
        } else {
            assert_eq!(end, 4104, "lossy policy degenerates to one word");
            assert_eq!(p.classify_run(4160, limit), (Capture::No, 4168));
        }
        p.reset();
    }

    #[test]
    fn classify_run_bounds_are_homogeneous() {
        run_roundtrip(&mut RangeTree::new(), true);
        run_roundtrip(&mut RangeArray::<4>::new(), true);
        run_roundtrip(&mut AddrFilter::with_log2_entries(12), false);
        for kind in LogKind::ALL {
            run_roundtrip(&mut LogImpl::new(kind), false);
        }
    }

    #[test]
    fn capture_helpers() {
        assert_eq!(Capture::from_query(None), Capture::No);
        assert_eq!(Capture::from_query(Some(3)), Capture::Level(3));
        assert!(Capture::Level(1).is_captured());
        assert!(!Capture::No.is_captured());
    }
}
