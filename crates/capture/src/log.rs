use crate::array::RangeArray;
use crate::filter::AddrFilter;
use crate::tree::RangeTree;

/// Which allocation-log implementation a transaction uses (paper §3.1.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LogKind {
    /// Precise search tree of ranges (paper Fig. 5).
    Tree,
    /// Cache-line-sized unsorted array of ranges (paper Fig. 6).
    Array,
    /// Direct-mapped hash filter of exact addresses.
    Filter,
}

impl LogKind {
    /// Every log kind, in the order the paper's figures list them.
    pub const ALL: [LogKind; 3] = [LogKind::Tree, LogKind::Array, LogKind::Filter];

    /// Short label used in experiment tables ("tree" / "array" / "filtering").
    pub fn name(self) -> &'static str {
        match self {
            LogKind::Tree => "tree",
            LogKind::Array => "array",
            LogKind::Filter => "filtering",
        }
    }
}

/// Common interface of the allocation-log data structures.
///
/// `level` is the transaction nesting depth that performed the allocation
/// (1 = outermost). A barrier that finds the accessed address captured at a
/// level *shallower* than the current one must still undo-log the access
/// (paper §2.2.1: memory local to a parent transaction is live-in for the
/// child and needs undo logging to support partial abort), which is why the
/// query returns the level rather than a boolean.
pub trait AllocLog {
    /// Record that `[start, start+len)` was allocated at nesting `level`.
    fn insert(&mut self, start: u64, len: u64, level: u32);
    /// Remove a previously inserted block (exact `start`).
    fn remove(&mut self, start: u64, len: u64);
    /// If a word access at `addr` hits a logged block, return its level.
    fn query(&self, addr: u64) -> Option<u32>;
    /// Forget everything (transaction end: commit or abort).
    fn clear(&mut self);
    /// Number of live entries currently representable (diagnostics).
    fn entries(&self) -> usize;
    /// Which implementation this is.
    fn kind(&self) -> LogKind;
}

/// Enum dispatch over the three implementations, so the hot barrier path
/// pays a predictable branch instead of a virtual call.
pub enum LogImpl {
    /// Precise balanced range tree.
    Tree(RangeTree),
    /// Cache-line-sized unsorted range array.
    Array(RangeArray<4>),
    /// Lossy direct-mapped address filter.
    Filter(AddrFilter),
}

impl LogImpl {
    /// Construct an empty log of the requested kind (the filter gets its
    /// fixed-size table).
    pub fn new(kind: LogKind) -> LogImpl {
        match kind {
            LogKind::Tree => LogImpl::Tree(RangeTree::new()),
            LogKind::Array => LogImpl::Array(RangeArray::new()),
            LogKind::Filter => LogImpl::Filter(AddrFilter::with_log2_entries(
                crate::filter::DEFAULT_FILTER_LOG2,
            )),
        }
    }

    /// See [`AllocLog::insert`].
    #[inline]
    pub fn insert(&mut self, start: u64, len: u64, level: u32) {
        match self {
            LogImpl::Tree(t) => t.insert(start, len, level),
            LogImpl::Array(a) => a.insert(start, len, level),
            LogImpl::Filter(f) => f.insert(start, len, level),
        }
    }

    /// See [`AllocLog::remove`].
    #[inline]
    pub fn remove(&mut self, start: u64, len: u64) {
        match self {
            LogImpl::Tree(t) => t.remove(start, len),
            LogImpl::Array(a) => a.remove(start, len),
            LogImpl::Filter(f) => f.remove(start, len),
        }
    }

    /// See [`AllocLog::query`].
    #[inline]
    pub fn query(&self, addr: u64) -> Option<u32> {
        match self {
            LogImpl::Tree(t) => t.query(addr),
            LogImpl::Array(a) => a.query(addr),
            LogImpl::Filter(f) => f.query(addr),
        }
    }

    /// See [`AllocLog::clear`].
    #[inline]
    pub fn clear(&mut self) {
        match self {
            LogImpl::Tree(t) => t.clear(),
            LogImpl::Array(a) => a.clear(),
            LogImpl::Filter(f) => f.clear(),
        }
    }

    /// See [`AllocLog::entries`].
    pub fn entries(&self) -> usize {
        match self {
            LogImpl::Tree(t) => t.entries(),
            LogImpl::Array(a) => a.entries(),
            LogImpl::Filter(f) => f.entries(),
        }
    }

    /// Which implementation this log dispatches to.
    pub fn kind(&self) -> LogKind {
        match self {
            LogImpl::Tree(_) => LogKind::Tree,
            LogImpl::Array(_) => LogKind::Array,
            LogImpl::Filter(_) => LogKind::Filter,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_dispatch_matches_kinds() {
        for kind in LogKind::ALL {
            let mut log = LogImpl::new(kind);
            assert_eq!(log.kind(), kind);
            log.insert(1000, 100, 1);
            // Every implementation must find the inserted block (none is
            // lossy on a single insert).
            assert_eq!(log.query(1000), Some(1));
            assert_eq!(log.query(1096), Some(1));
            assert_eq!(log.query(2000), None);
            log.clear();
            assert_eq!(log.query(1000), None);
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(LogKind::Tree.name(), "tree");
        assert_eq!(LogKind::Array.name(), "array");
        assert_eq!(LogKind::Filter.name(), "filtering");
    }
}
