use crate::log::{AllocLog, LogKind};

/// The paper's search-tree allocation log (Fig. 5), realized as an AVL tree
/// of disjoint ranges keyed by start address.
///
/// Every node is additionally annotated with the bounds `[min_start,
/// max_end)` of its entire subtree. As in the paper, this "optimizes for the
/// common case": a lookup of an address that was *not* allocated in the
/// transaction usually falls outside the bounds of a node high in the tree
/// and terminates immediately, keeping the cost added to non-elidable
/// barriers low.
///
/// The paper does not specify its balancing scheme; we use AVL rotations
/// (documented as a substitution in DESIGN.md). Precision is what matters:
/// this structure finds *every* captured access, which is why the paper (and
/// our Fig. 8 harness) uses it to count elision opportunities.
pub struct RangeTree {
    root: Option<Box<Node>>,
    len: usize,
}

struct Node {
    start: u64,
    end: u64,
    level: u32,
    height: i8,
    /// Smallest start in this subtree.
    min_start: u64,
    /// Largest end in this subtree.
    max_end: u64,
    left: Option<Box<Node>>,
    right: Option<Box<Node>>,
}

impl Node {
    fn new(start: u64, end: u64, level: u32) -> Box<Node> {
        Box::new(Node {
            start,
            end,
            level,
            height: 1,
            min_start: start,
            max_end: end,
            left: None,
            right: None,
        })
    }

    fn update(&mut self) {
        let (lh, rh) = (height(&self.left), height(&self.right));
        self.height = 1 + lh.max(rh);
        self.min_start = self.left.as_ref().map_or(self.start, |l| l.min_start);
        self.max_end = self
            .end
            .max(self.left.as_ref().map_or(0, |l| l.max_end))
            .max(self.right.as_ref().map_or(0, |r| r.max_end));
    }

    fn balance_factor(&self) -> i8 {
        height(&self.left) - height(&self.right)
    }
}

#[inline]
fn height(n: &Option<Box<Node>>) -> i8 {
    n.as_ref().map_or(0, |n| n.height)
}

fn rotate_right(mut n: Box<Node>) -> Box<Node> {
    let mut l = n.left.take().expect("rotate_right without left child");
    n.left = l.right.take();
    n.update();
    l.right = Some(n);
    l.update();
    l
}

fn rotate_left(mut n: Box<Node>) -> Box<Node> {
    let mut r = n.right.take().expect("rotate_left without right child");
    n.right = r.left.take();
    n.update();
    r.left = Some(n);
    r.update();
    r
}

fn rebalance(mut n: Box<Node>) -> Box<Node> {
    n.update();
    let bf = n.balance_factor();
    if bf > 1 {
        if n.left.as_ref().unwrap().balance_factor() < 0 {
            n.left = Some(rotate_left(n.left.take().unwrap()));
        }
        rotate_right(n)
    } else if bf < -1 {
        if n.right.as_ref().unwrap().balance_factor() > 0 {
            n.right = Some(rotate_right(n.right.take().unwrap()));
        }
        rotate_left(n)
    } else {
        n
    }
}

fn insert_node(n: Option<Box<Node>>, new: Box<Node>) -> Box<Node> {
    match n {
        None => new,
        Some(mut n) => {
            if new.start < n.start {
                n.left = Some(insert_node(n.left.take(), new));
            } else {
                n.right = Some(insert_node(n.right.take(), new));
            }
            rebalance(n)
        }
    }
}

/// Remove the node with the minimum start; returns (rest, removed).
fn take_min(mut n: Box<Node>) -> (Option<Box<Node>>, Box<Node>) {
    match n.left.take() {
        None => (n.right.take(), n),
        Some(l) => {
            let (rest, min) = take_min(l);
            n.left = rest;
            (Some(rebalance(n)), min)
        }
    }
}

fn remove_node(n: Option<Box<Node>>, start: u64) -> (Option<Box<Node>>, bool) {
    match n {
        None => (None, false),
        Some(mut n) => {
            if start < n.start {
                let (l, removed) = remove_node(n.left.take(), start);
                n.left = l;
                (Some(rebalance(n)), removed)
            } else if start > n.start {
                let (r, removed) = remove_node(n.right.take(), start);
                n.right = r;
                (Some(rebalance(n)), removed)
            } else {
                match (n.left.take(), n.right.take()) {
                    (None, r) => (r, true),
                    (l, None) => (l, true),
                    (l, Some(r)) => {
                        let (rest, mut succ) = take_min(r);
                        succ.left = l;
                        succ.right = rest;
                        (Some(rebalance(succ)), true)
                    }
                }
            }
        }
    }
}

impl RangeTree {
    /// An empty tree.
    pub fn new() -> RangeTree {
        RangeTree { root: None, len: 0 }
    }

    /// Height of the tree (diagnostics; O(1)).
    pub fn height(&self) -> usize {
        height(&self.root) as usize
    }

    /// Like [`AllocLog::query`], but returning the containing range
    /// `(start, end, level)` — the basis of the STM's inline capture cache
    /// (the tree is precise, so the range stays valid until it is removed
    /// or the tree is cleared).
    #[inline]
    pub fn query_range(&self, addr: u64) -> Option<(u64, u64, u32)> {
        let mut cur = &self.root;
        while let Some(n) = cur {
            // Paper's early-exit: the subtree bounds prune most misses at
            // internal nodes near the root.
            if addr < n.min_start || addr >= n.max_end {
                return None;
            }
            if addr < n.start {
                cur = &n.left;
            } else if addr < n.end {
                return Some((n.start, n.end, n.level));
            } else {
                cur = &n.right;
            }
        }
        None
    }

    /// Smallest logged range start strictly greater than `addr` — the next
    /// capture boundary ahead of a miss. Ranged barriers use this to bound a
    /// *shared* run: every word in `[addr, next_start_after(addr))` is
    /// guaranteed not captured (ranges are disjoint and `addr` itself already
    /// missed), so one classification covers the whole prefix. Plain BST
    /// successor-by-start walk, O(height).
    #[inline]
    pub fn next_start_after(&self, addr: u64) -> Option<u64> {
        let mut best = None;
        let mut cur = &self.root;
        while let Some(n) = cur {
            if n.start > addr {
                best = Some(n.start);
                cur = &n.left;
            } else {
                cur = &n.right;
            }
        }
        best
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        fn walk(n: &Option<Box<Node>>, lo: u64, hi: u64) -> (i8, u64, u64) {
            match n {
                None => (0, u64::MAX, 0),
                Some(n) => {
                    assert!(n.start >= lo && n.start < hi, "BST order violated");
                    let (lh, lmin, lmax) = walk(&n.left, lo, n.start);
                    let (rh, _rmin, rmax) = walk(&n.right, n.start + 1, hi);
                    assert!((lh - rh).abs() <= 1, "AVL balance violated");
                    assert_eq!(n.height, 1 + lh.max(rh), "height stale");
                    assert_eq!(n.min_start, lmin.min(n.start), "min_start stale");
                    assert_eq!(n.max_end, lmax.max(rmax).max(n.end), "max_end stale");
                    (n.height, n.min_start, n.max_end)
                }
            }
        }
        walk(&self.root, 0, u64::MAX);
    }
}

impl Default for RangeTree {
    fn default() -> Self {
        Self::new()
    }
}

impl AllocLog for RangeTree {
    fn insert(&mut self, start: u64, len: u64, level: u32) {
        debug_assert!(len > 0);
        self.root = Some(insert_node(
            self.root.take(),
            Node::new(start, start + len, level),
        ));
        self.len += 1;
    }

    fn remove(&mut self, start: u64, _len: u64) {
        let (root, removed) = remove_node(self.root.take(), start);
        self.root = root;
        if removed {
            self.len -= 1;
        }
    }

    #[inline]
    fn query(&self, addr: u64) -> Option<u32> {
        self.query_range(addr).map(|(_, _, level)| level)
    }

    fn clear(&mut self) {
        self.root = None;
        self.len = 0;
    }

    fn entries(&self) -> usize {
        self.len
    }

    fn kind(&self) -> LogKind {
        LogKind::Tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree_misses() {
        let t = RangeTree::new();
        assert_eq!(t.query(123), None);
        assert_eq!(t.entries(), 0);
    }

    #[test]
    fn paper_figure_5_example() {
        // Ranges (1000,1100), (1150,1200), (1980,2000) from the paper.
        let mut t = RangeTree::new();
        t.insert(1000, 100, 1);
        t.insert(1150, 50, 1);
        t.insert(1980, 20, 1);
        assert_eq!(t.query(1000), Some(1));
        assert_eq!(t.query(1099), Some(1));
        assert_eq!(t.query(1100), None, "end is exclusive");
        assert_eq!(t.query(1120), None, "gap between ranges");
        assert_eq!(t.query(1150), Some(1));
        assert_eq!(t.query(1999), Some(1));
        assert_eq!(t.query(999), None);
        assert_eq!(t.query(2000), None);
        t.check_invariants();
    }

    #[test]
    fn insert_remove_many_keeps_balance() {
        let mut t = RangeTree::new();
        for i in 0..512u64 {
            t.insert(i * 100, 50, 1);
            t.check_invariants();
        }
        assert_eq!(t.entries(), 512);
        assert!(
            t.height() <= 12,
            "AVL height bound violated: {}",
            t.height()
        );
        for i in (0..512u64).step_by(2) {
            t.remove(i * 100, 50);
            t.check_invariants();
        }
        assert_eq!(t.entries(), 256);
        for i in 0..512u64 {
            let expect = if i % 2 == 0 { None } else { Some(1) };
            assert_eq!(t.query(i * 100 + 25), expect, "i={i}");
        }
    }

    #[test]
    fn next_start_after_finds_the_successor_range() {
        let mut t = RangeTree::new();
        assert_eq!(t.next_start_after(0), None);
        t.insert(1000, 100, 1);
        t.insert(1150, 50, 1);
        t.insert(1980, 20, 1);
        assert_eq!(t.next_start_after(0), Some(1000));
        assert_eq!(t.next_start_after(999), Some(1000));
        assert_eq!(t.next_start_after(1000), Some(1150), "strictly greater");
        assert_eq!(t.next_start_after(1100), Some(1150));
        assert_eq!(t.next_start_after(1150), Some(1980));
        assert_eq!(t.next_start_after(1980), None);
        t.remove(1150, 50);
        assert_eq!(t.next_start_after(1000), Some(1980), "hole skips removed");
    }

    #[test]
    fn levels_are_preserved() {
        let mut t = RangeTree::new();
        t.insert(100, 10, 1);
        t.insert(200, 10, 2);
        t.insert(300, 10, 3);
        assert_eq!(t.query(105), Some(1));
        assert_eq!(t.query(205), Some(2));
        assert_eq!(t.query(305), Some(3));
    }

    #[test]
    fn remove_missing_is_noop() {
        let mut t = RangeTree::new();
        t.insert(100, 10, 1);
        t.remove(999, 10);
        assert_eq!(t.entries(), 1);
        assert_eq!(t.query(100), Some(1));
    }

    #[test]
    fn clear_resets() {
        let mut t = RangeTree::new();
        for i in 0..32u64 {
            t.insert(i * 64, 64, 1);
        }
        t.clear();
        assert_eq!(t.entries(), 0);
        assert_eq!(t.query(64), None);
    }

    #[test]
    fn reverse_and_random_insert_orders() {
        let mut t = RangeTree::new();
        let mut order: Vec<u64> = (0..256).collect();
        // Deterministic shuffle.
        let mut s = 0x12345678u64;
        for i in (1..order.len()).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        for &i in &order {
            t.insert(i * 16, 16, 1);
        }
        t.check_invariants();
        for i in 0..256u64 {
            assert_eq!(t.query(i * 16 + 8), Some(1));
        }
    }
}
