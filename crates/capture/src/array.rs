use crate::log::{AllocLog, LogKind};

/// The paper's array allocation log (Fig. 6): an unsorted, fixed-capacity
/// array of `(start, end)` ranges sized to fit one cache line, so a capture
/// check brings all logged ranges into cache at once.
///
/// On a 64-bit machine a 64-byte cache line holds `N = 4` `(u64, u64)`
/// ranges (the paper's figure shows 8 ranges of 32-bit addresses on a 32-bit
/// CPU). When the array is full, further inserts are *dropped*: the paper
/// observes that capture analysis may be arbitrarily inaccurate for a
/// direct-update STM as long as it is conservative — a dropped range only
/// means the corresponding barriers are not elided. Nesting levels are kept
/// in a side array so the hot range scan stays within the line.
pub struct RangeArray<const N: usize = 4> {
    ranges: Ranges<N>,
    levels: [u32; N],
    live: u32,
    /// Inserts dropped because the array was full (diagnostics; the paper
    /// notes yada is the one STAMP program where this matters).
    pub dropped: u64,
}

#[repr(align(64))]
struct Ranges<const N: usize>([(u64, u64); N]);

impl<const N: usize> RangeArray<N> {
    /// An empty array; all `N` slots free.
    pub fn new() -> RangeArray<N> {
        RangeArray {
            ranges: Ranges([(0, 0); N]),
            levels: [0; N],
            live: 0,
            dropped: 0,
        }
    }

    /// Capacity in ranges (cache-line derived).
    pub const fn capacity(&self) -> usize {
        N
    }

    /// Like [`AllocLog::query`], but returning the containing range
    /// `(start, end, level)` for the STM's inline capture cache. A range
    /// that made it into the array stays queryable until removed or
    /// cleared (only *inserts* are lossy), so a returned range is a valid
    /// residency guarantee.
    #[inline]
    pub fn query_range(&self, addr: u64) -> Option<(u64, u64, u32)> {
        // Straight-line scan of the whole line, as the paper describes.
        for i in 0..N {
            let (s, e) = self.ranges.0[i];
            if addr >= s && addr < e {
                return Some((s, e, self.levels[i]));
            }
        }
        None
    }

    /// Smallest logged range start strictly greater than `addr` (see
    /// [`RangeTree::next_start_after`](crate::RangeTree::next_start_after)):
    /// bounds a shared run for the ranged barriers. Linear scan of the line,
    /// same cost shape as `query_range`.
    #[inline]
    pub fn next_start_after(&self, addr: u64) -> Option<u64> {
        let mut best = None;
        for i in 0..N {
            let (s, e) = self.ranges.0[i];
            if s != e && s > addr && best.is_none_or(|b| s < b) {
                best = Some(s);
            }
        }
        best
    }
}

impl<const N: usize> Default for RangeArray<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const N: usize> AllocLog for RangeArray<N> {
    fn insert(&mut self, start: u64, len: u64, level: u32) {
        debug_assert!(len > 0);
        for i in 0..N {
            let (s, e) = self.ranges.0[i];
            if s == e {
                self.ranges.0[i] = (start, start + len);
                self.levels[i] = level;
                self.live += 1;
                return;
            }
        }
        self.dropped += 1;
    }

    fn remove(&mut self, start: u64, _len: u64) {
        for i in 0..N {
            let (s, e) = self.ranges.0[i];
            if s == start && s != e {
                self.ranges.0[i] = (0, 0);
                self.live -= 1;
                return;
            }
        }
    }

    #[inline]
    fn query(&self, addr: u64) -> Option<u32> {
        self.query_range(addr).map(|(_, _, level)| level)
    }

    fn clear(&mut self) {
        self.ranges.0 = [(0, 0); N];
        self.live = 0;
    }

    fn entries(&self) -> usize {
        self.live as usize
    }

    fn kind(&self) -> LogKind {
        LogKind::Array
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_one_cache_line() {
        assert_eq!(std::mem::size_of::<Ranges<4>>(), 64);
        assert_eq!(std::mem::align_of::<Ranges<4>>(), 64);
    }

    #[test]
    fn insert_query_remove() {
        let mut a: RangeArray<4> = RangeArray::new();
        a.insert(100, 50, 1);
        a.insert(400, 8, 2);
        assert_eq!(a.query(100), Some(1));
        assert_eq!(a.query(149), Some(1));
        assert_eq!(a.query(150), None);
        assert_eq!(a.query(404), Some(2));
        a.remove(100, 50);
        assert_eq!(a.query(120), None);
        assert_eq!(a.entries(), 1);
    }

    #[test]
    fn overflow_is_dropped_conservatively() {
        let mut a: RangeArray<4> = RangeArray::new();
        for i in 0..6u64 {
            a.insert(i * 100, 10, 1);
        }
        assert_eq!(a.entries(), 4);
        assert_eq!(a.dropped, 2);
        // The first four are found, the overflowed two are (conservatively)
        // missed — never wrongly reported captured.
        assert_eq!(a.query(5), Some(1));
        assert_eq!(a.query(305), Some(1));
        assert_eq!(a.query(405), None);
        assert_eq!(a.query(505), None);
    }

    #[test]
    fn next_start_after_scans_live_slots() {
        let mut a: RangeArray<4> = RangeArray::new();
        assert_eq!(a.next_start_after(0), None);
        a.insert(400, 8, 2);
        a.insert(100, 50, 1);
        assert_eq!(a.next_start_after(0), Some(100));
        assert_eq!(a.next_start_after(100), Some(400), "strictly greater");
        assert_eq!(a.next_start_after(399), Some(400));
        assert_eq!(a.next_start_after(400), None);
        a.remove(400, 8);
        assert_eq!(a.next_start_after(100), None, "freed slot is ignored");
    }

    #[test]
    fn remove_frees_slot_for_reuse() {
        let mut a: RangeArray<4> = RangeArray::new();
        for i in 0..4u64 {
            a.insert(i * 100, 10, 1);
        }
        a.remove(200, 10);
        a.insert(1000, 10, 3);
        assert_eq!(a.query(1005), Some(3));
        assert_eq!(a.entries(), 4);
    }

    #[test]
    fn clear_resets_everything_but_drop_stats() {
        let mut a: RangeArray<4> = RangeArray::new();
        for i in 0..5u64 {
            a.insert(i * 100, 10, 1);
        }
        a.clear();
        assert_eq!(a.entries(), 0);
        assert_eq!(a.query(105), None);
        assert_eq!(a.dropped, 1, "drop count is cumulative diagnostics");
    }

    #[test]
    fn zero_length_sentinel_is_not_a_match() {
        let a: RangeArray<4> = RangeArray::new();
        assert_eq!(a.query(0), None);
    }

    #[test]
    fn larger_variant_for_ablation() {
        let mut a: RangeArray<8> = RangeArray::new();
        for i in 0..8u64 {
            a.insert(i * 100, 10, 1);
        }
        assert_eq!(a.entries(), 8);
        assert_eq!(a.dropped, 0);
    }
}
