use crate::log::{LogImpl, LogKind};

/// Log of programmer-annotated private (thread-local or read-only) memory
/// (paper §3.1.3 and Fig. 7).
///
/// The paper exposes
/// `addPrivateMemoryBlock(void*, size_t)` / `removePrivateMemoryBlock(...)`
/// so the programmer can mark address ranges safe to access without STM
/// barriers. The log uses the same data structures and algorithms as the
/// allocation log; the one difference — and the reason it is a separate log —
/// is lifetime: the allocation log is emptied at every transaction end while
/// this log persists until the programmer removes the block.
///
/// As the paper warns, incorrect annotations can introduce data races (in
/// this simulated runtime they cannot corrupt Rust memory, but they can make
/// a workload's results wrong, which integration tests exercise).
pub struct PrivateLog {
    log: LogImpl,
    adds: u64,
    removes: u64,
}

impl PrivateLog {
    /// The default uses the precise tree, which the paper's design favours
    /// for long-lived annotations (no capacity limit, exact removal).
    /// An empty annotation log backed by the precise tree.
    pub fn new() -> PrivateLog {
        PrivateLog::with_kind(LogKind::Tree)
    }

    /// An empty annotation log over the chosen log structure.
    pub fn with_kind(kind: LogKind) -> PrivateLog {
        PrivateLog {
            log: LogImpl::new(kind),
            adds: 0,
            removes: 0,
        }
    }

    /// Paper API: `void addPrivateMemoryBlock(void *addr, size_t size)`.
    pub fn add_private_memory_block(&mut self, addr: u64, size: u64) {
        self.adds += 1;
        self.log.insert(addr, size, 0);
    }

    /// Paper API: `void removePrivateMemoryBlock(void *addr, size_t size)`.
    pub fn remove_private_memory_block(&mut self, addr: u64, size: u64) {
        self.removes += 1;
        self.log.remove(addr, size);
    }

    /// Barrier-side check: is this address annotated private right now?
    #[inline]
    pub fn is_private(&self, addr: u64) -> bool {
        self.log.query(addr).is_some()
    }

    /// Number of annotated blocks currently live (tree/array exact).
    pub fn blocks(&self) -> usize {
        self.log.entries()
    }

    /// (adds, removes) counters for diagnostics.
    pub fn churn(&self) -> (u64, u64) {
        (self.adds, self.removes)
    }
}

impl Default for PrivateLog {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotate_and_unannotate() {
        let mut p = PrivateLog::new();
        p.add_private_memory_block(4096, 128);
        assert!(p.is_private(4096));
        assert!(p.is_private(4096 + 120));
        assert!(!p.is_private(4096 + 128));
        p.remove_private_memory_block(4096, 128);
        assert!(!p.is_private(4096));
        assert_eq!(p.churn(), (1, 1));
    }

    #[test]
    fn persists_across_many_blocks() {
        let mut p = PrivateLog::new();
        for i in 0..100u64 {
            p.add_private_memory_block(i * 1000, 500);
        }
        assert_eq!(p.blocks(), 100);
        assert!(p.is_private(42 * 1000 + 499));
        assert!(!p.is_private(42 * 1000 + 500));
    }

    #[test]
    fn dynamic_region_lifecycle() {
        // Paper §2.2.2: data can change from thread-local to shared and back
        // (e.g. split for parallel processing, then published).
        let mut p = PrivateLog::new();
        p.add_private_memory_block(1 << 20, 4096);
        assert!(p.is_private((1 << 20) + 8));
        p.remove_private_memory_block(1 << 20, 4096); // published
        assert!(!p.is_private((1 << 20) + 8));
        p.add_private_memory_block(1 << 20, 4096); // re-privatized
        assert!(p.is_private((1 << 20) + 8));
    }

    #[test]
    fn alternative_backing_structures() {
        for kind in LogKind::ALL {
            let mut p = PrivateLog::with_kind(kind);
            p.add_private_memory_block(8192, 64);
            assert!(p.is_private(8192), "{kind:?}");
            p.remove_private_memory_block(8192, 64);
            assert!(!p.is_private(8192), "{kind:?}");
        }
    }
}
