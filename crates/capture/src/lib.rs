//! Capture-analysis data structures (paper §3.1).
//!
//! The runtime capture analysis of "Optimizing Transactions for Captured
//! Memory" needs to answer one question inside every STM barrier: *was the
//! accessed address allocated by the current transaction?* For the stack this
//! is a single range comparison (implemented in `txmem::ThreadStack`); for
//! the heap it requires an **allocation log** of every block allocated inside
//! the transaction. The paper evaluates three interchangeable
//! implementations, all provided here:
//!
//! * [`RangeTree`] — a balanced search tree of ranges (paper Fig. 5):
//!   *precise*, with internal nodes carrying subtree bounds so misses
//!   terminate high in the tree.
//! * [`RangeArray`] — an unsorted, cache-line-sized array of ranges (paper
//!   Fig. 6): *lossy* (overflowing inserts are dropped) but very cheap.
//! * [`AddrFilter`] — a direct-mapped hash filter of exact word addresses
//!   (paper §3.1.2 "Filtering"): false negatives allowed, never false
//!   positives.
//! * [`NurseryLog`] — the transaction-local *bump-region* classifier: when
//!   the runtime serves small transactional allocations from a contiguous
//!   nursery region, heap capture collapses to the same two-compare range
//!   test as the stack check (plus one watermark compare for nesting).
//!   Blocks the scalar range cannot represent — overflow, demotions past a
//!   freed hole, large blocks — compose with any of the three logs above.
//!
//! All are conservative: a miss only means a full STM barrier is executed, so
//! lossiness costs performance, never correctness (valid for in-place-update
//! STMs, as the paper notes; a deferred-update STM would need consistency).
//!
//! [`PrivateLog`] reuses the same structures for the paper's §3.1.3
//! `addPrivateMemoryBlock` / `removePrivateMemoryBlock` annotations for
//! thread-local and read-only data: unlike the allocation log it is *not*
//! cleared at transaction end.

//! The [`CapturePolicy`] trait is the seam the STM's barrier pipeline is
//! monomorphized over: every structure above implements it (via
//! [`AllocLog`]), and [`LogImpl`] provides the enum-dispatch *reference*
//! implementation used only at spawn-time selection and in differential
//! tests.

#![warn(missing_docs)]

mod array;
mod filter;
mod log;
mod nursery;
mod policy;
mod private;
mod tree;

pub use array::RangeArray;
pub use filter::{AddrFilter, DEFAULT_FILTER_LOG2};
pub use log::{AllocLog, LogImpl, LogKind};
pub use nursery::NurseryLog;
pub use policy::{Capture, CapturePolicy};
pub use private::PrivateLog;
pub use tree::RangeTree;
