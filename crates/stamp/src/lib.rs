//! A STAMP-like transactional benchmark suite on the simulated heap.
//!
//! The paper evaluates its capture-analysis optimizations with STAMP 0.9.9
//! (Stanford Transactional Applications for Multi-Processing). This crate
//! ports the suite's *transactional kernels* to the captured-memory STM:
//!
//! * [`collections`] mirrors STAMP's `lib/` directory: linked list,
//!   red-black tree, hash table, queue, binary heap, vector and bitmap, all
//!   living in simulated memory and accessed through STM barriers with
//!   per-site [`stm::Site`] descriptors.
//! * [`apps`] ports the ten benchmark configurations the paper measures:
//!   bayes, genome, intruder, kmeans (high/low), labyrinth, ssca2, vacation
//!   (high/low) and yada. Input sizes are reduced (see `Scale`), but each
//!   port preserves the property the paper's analysis depends on — the mix
//!   of captured vs. shared accesses per transaction (e.g. yada's
//!   allocation-heavy cavity refinement vs. kmeans' elision-free center
//!   updates). DESIGN.md §4.4 documents every simplification.

pub mod apps;
pub mod collections;
mod rng;

pub use apps::{Benchmark, RunOutcome, Scale, MAX_THREADS};
pub use rng::SplitMix64;
