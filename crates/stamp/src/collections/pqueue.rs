//! Transactional binary max-heap (STAMP `lib/heap.c`, yada's work queue of
//! bad triangles).

use stm::{Site, StmRuntime, Tx, TxResult, WorkerCtx};
use txmem::Addr;

// Handle: [capacity, size, data_ptr]
const CAP: u64 = 0;
const SIZE: u64 = 1;
const DATA: u64 = 2;

static S_META_R: Site = Site::shared("pqueue.meta.read");
static S_META_W: Site = Site::shared("pqueue.meta.write");
static S_DATA_R: Site = Site::shared("pqueue.data.read");
static S_DATA_W: Site = Site::shared("pqueue.data.write");
static S_GROW_W: Site = Site::captured_local("pqueue.grow.write");

#[derive(Clone, Copy, Debug)]
pub struct TxHeapQueue {
    pub handle: Addr,
}

impl TxHeapQueue {
    pub fn create(rt: &StmRuntime, capacity: u64) -> TxHeapQueue {
        let capacity = capacity.max(4);
        let handle = rt.alloc_global(3 * 8);
        let data = rt.alloc_global(capacity * 8);
        rt.mem().store(handle.word(CAP), capacity);
        rt.mem().store(handle.word(SIZE), 0);
        rt.mem().store(handle.word(DATA), data.raw());
        TxHeapQueue { handle }
    }

    /// Insert a value (ordered by the full u64; apps pack priority in the
    /// high bits).
    pub fn push(&self, tx: &mut Tx<'_, '_>, val: u64) -> TxResult<()> {
        let cap = tx.read(&S_META_R, self.handle.word(CAP))?;
        let size = tx.read(&S_META_R, self.handle.word(SIZE))?;
        let mut data = tx.read_addr(&S_META_R, self.handle.word(DATA))?;
        if size == cap {
            let new_cap = cap * 2;
            let new_data = tx.alloc(new_cap * 8)?;
            for i in 0..size {
                let v = tx.read(&S_DATA_R, data.word(i))?;
                tx.write(&S_GROW_W, new_data.word(i), v)?;
            }
            tx.free(data);
            tx.write(&S_META_W, self.handle.word(CAP), new_cap)?;
            tx.write_addr(&S_META_W, self.handle.word(DATA), new_data)?;
            data = new_data;
        }
        // Sift up.
        let mut i = size;
        tx.write(&S_DATA_W, data.word(i), val)?;
        while i > 0 {
            let parent = (i - 1) / 2;
            let pv = tx.read(&S_DATA_R, data.word(parent))?;
            let cv = tx.read(&S_DATA_R, data.word(i))?;
            if pv >= cv {
                break;
            }
            tx.write(&S_DATA_W, data.word(parent), cv)?;
            tx.write(&S_DATA_W, data.word(i), pv)?;
            i = parent;
        }
        tx.write(&S_META_W, self.handle.word(SIZE), size + 1)
    }

    /// Remove and return the maximum.
    pub fn pop(&self, tx: &mut Tx<'_, '_>) -> TxResult<Option<u64>> {
        let size = tx.read(&S_META_R, self.handle.word(SIZE))?;
        if size == 0 {
            return Ok(None);
        }
        let data = tx.read_addr(&S_META_R, self.handle.word(DATA))?;
        let top = tx.read(&S_DATA_R, data.word(0))?;
        let last = tx.read(&S_DATA_R, data.word(size - 1))?;
        let size = size - 1;
        tx.write(&S_META_W, self.handle.word(SIZE), size)?;
        if size > 0 {
            tx.write(&S_DATA_W, data.word(0), last)?;
            // Sift down.
            let mut i = 0u64;
            loop {
                let l = 2 * i + 1;
                let r = 2 * i + 2;
                let mut largest = i;
                let mut lv = tx.read(&S_DATA_R, data.word(i))?;
                if l < size {
                    let v = tx.read(&S_DATA_R, data.word(l))?;
                    if v > lv {
                        largest = l;
                        lv = v;
                    }
                }
                if r < size {
                    let v = tx.read(&S_DATA_R, data.word(r))?;
                    if v > lv {
                        largest = r;
                    }
                }
                if largest == i {
                    break;
                }
                let a = tx.read(&S_DATA_R, data.word(i))?;
                let b = tx.read(&S_DATA_R, data.word(largest))?;
                tx.write(&S_DATA_W, data.word(i), b)?;
                tx.write(&S_DATA_W, data.word(largest), a)?;
                i = largest;
            }
        }
        Ok(Some(top))
    }

    pub fn len(&self, tx: &mut Tx<'_, '_>) -> TxResult<u64> {
        tx.read(&S_META_R, self.handle.word(SIZE))
    }

    pub fn seq_len(&self, w: &WorkerCtx<'_>) -> u64 {
        w.load(self.handle.word(SIZE))
    }

    /// Non-transactional push for setup.
    pub fn seq_push(&self, w: &WorkerCtx<'_>, val: u64) {
        let cap = w.load(self.handle.word(CAP));
        let size = w.load(self.handle.word(SIZE));
        assert!(size < cap, "seq_push into full heap (size it for setup)");
        let data = w.load_addr(self.handle.word(DATA));
        let mut i = size;
        w.store(data.word(i), val);
        while i > 0 {
            let parent = (i - 1) / 2;
            let pv = w.load(data.word(parent));
            let cv = w.load(data.word(i));
            if pv >= cv {
                break;
            }
            w.store(data.word(parent), cv);
            w.store(data.word(i), pv);
            i = parent;
        }
        w.store(self.handle.word(SIZE), size + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use stm::{StmRuntime, TxConfig};
    use txmem::MemConfig;

    fn rt() -> StmRuntime {
        StmRuntime::new(MemConfig::small(), TxConfig::runtime_tree_full())
    }

    #[test]
    fn pops_in_descending_order() {
        let rt = rt();
        let h = TxHeapQueue::create(&rt, 4);
        let mut w = rt.spawn_worker();
        let mut rng = SplitMix64::new(5);
        let mut vals: Vec<u64> = (0..64).map(|_| rng.below(1000)).collect();
        for &v in &vals {
            w.txn(|tx| h.push(tx, v));
        }
        vals.sort_unstable_by(|a, b| b.cmp(a));
        for &expect in &vals {
            assert_eq!(w.txn(|tx| h.pop(tx)), Some(expect));
        }
        assert_eq!(w.txn(|tx| h.pop(tx)), None);
    }

    #[test]
    fn grow_preserves_contents() {
        let rt = rt();
        let h = TxHeapQueue::create(&rt, 4);
        let mut w = rt.spawn_worker();
        for v in 0..50u64 {
            w.txn(|tx| h.push(tx, v));
        }
        assert_eq!(h.seq_len(&w), 50);
        assert_eq!(w.txn(|tx| h.pop(tx)), Some(49));
    }

    #[test]
    fn seq_push_then_tx_pop() {
        let rt = rt();
        let h = TxHeapQueue::create(&rt, 64);
        let mut w = rt.spawn_worker();
        for v in [5u64, 1, 9, 3] {
            h.seq_push(&w, v);
        }
        assert_eq!(w.txn(|tx| h.pop(tx)), Some(9));
        assert_eq!(w.txn(|tx| h.pop(tx)), Some(5));
    }

    #[test]
    fn concurrent_push_pop_conserves() {
        let rt = rt();
        let h = TxHeapQueue::create(&rt, 8);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let rt = &rt;
                s.spawn(move || {
                    let mut w = rt.spawn_worker();
                    for i in 0..64u64 {
                        w.txn(|tx| h.push(tx, t * 100 + i));
                    }
                    for _ in 0..32 {
                        w.txn(|tx| h.pop(tx));
                    }
                });
            }
        });
        let w = rt.spawn_worker();
        assert_eq!(h.seq_len(&w), 4 * 64 - 4 * 32);
    }
}
