//! Sorted singly-linked list (STAMP `lib/list.c`), keyed by `u64`, unique
//! keys, each node carrying one value word.
//!
//! Built on the typed transactional object layer: the node and header
//! layouts are declared once with `tx_object!` and every access goes
//! through `TxPtr` field projections, which lower to the very same word
//! barriers the previous hand-offset implementation called.

use stm::{tx_object, Site, StackFrame, StmRuntime, Tx, TxObject, TxPtr, TxResult, WorkerCtx};
use txmem::Addr;

tx_object! {
    /// A list node.
    pub struct Node {
        /// Next node in key order (null-terminated).
        pub next: TxPtr<Node>,
        /// The key (unique, sorted ascending).
        pub key: u64,
        /// The value word.
        pub val: u64,
    }
}

tx_object! {
    /// The list header (what [`TxList::handle`] points at).
    pub struct ListHdr {
        /// First node in key order.
        pub head: TxPtr<Node>,
        /// Number of nodes.
        pub size: u64,
    }
}

// --- access sites ---------------------------------------------------------
static S_HEAD_R: Site = Site::shared("list.head.read");
static S_HEAD_W: Site = Site::shared("list.head.write");
static S_NEXT_R: Site = Site::shared("list.next.read");
static S_KEY_R: Site = Site::shared("list.key.read");
static S_VAL_R: Site = Site::shared("list.val.read");
static S_LINK_W: Site = Site::shared("list.link.write");
static S_SIZE_R: Site = Site::shared("list.size.read");
static S_SIZE_W: Site = Site::shared("list.size.write");
// Initialization of a freshly allocated node: captured; visible to the
// static analysis because the allocation happens in the same function.
static S_INIT_W: Site = Site::captured_local("list.node_init.write");
// Iterator cursor on the transaction-local stack (paper Fig. 1a); the
// helper functions are small and inlined, so the compiler analysis sees the
// address-of-local flow.
static S_ITER_W: Site = Site::captured_local("list.iter.write");
static S_ITER_R: Site = Site::captured_local("list.iter.read");

/// A transactional sorted list. The handle is a [`ListHdr`] in simulated
/// memory; `TxList` itself is a plain copyable reference.
#[derive(Clone, Copy, Debug)]
pub struct TxList {
    /// Address of the [`ListHdr`] (kept as a raw [`Addr`] so workloads can
    /// stash list handles in plain memory words).
    pub handle: Addr,
}

impl TxList {
    /// The typed view of the header.
    #[inline]
    fn hdr(&self) -> TxPtr<ListHdr> {
        TxPtr::from_addr(self.handle)
    }

    /// Create a list during (non-transactional) setup.
    pub fn create(rt: &StmRuntime) -> TxList {
        let handle = rt.alloc_global(ListHdr::BYTES);
        let h = TxPtr::<ListHdr>::from_addr(handle);
        rt.mem().store(h.field(ListHdr::head), 0);
        rt.mem().store(h.field(ListHdr::size), 0);
        TxList { handle }
    }

    /// Create a list inside a transaction (the header is captured memory,
    /// e.g. yada's per-cavity lists).
    pub fn create_tx(tx: &mut Tx<'_, '_>) -> TxResult<TxList> {
        let h = tx.alloc_obj::<ListHdr>()?;
        tx.write_field(&S_INIT_W, h, ListHdr::head, TxPtr::NULL)?;
        tx.write_field(&S_INIT_W, h, ListHdr::size, 0)?;
        Ok(TxList { handle: h.addr() })
    }

    /// Insert `(key, val)`; returns `false` if the key already exists.
    pub fn insert(&self, tx: &mut Tx<'_, '_>, key: u64, val: u64) -> TxResult<bool> {
        // Find predecessor "next-field" address: either the header's
        // `head` slot or some node's `next` slot — one word each, so the
        // cursor is a plain field address.
        let mut prev_next = self.hdr().field(ListHdr::head);
        let mut cur: TxPtr<Node> = tx.read_as(&S_HEAD_R, prev_next)?;
        while !cur.is_null() {
            let k = tx.read_field(&S_KEY_R, cur, Node::key)?;
            if k >= key {
                if k == key {
                    return Ok(false);
                }
                break;
            }
            prev_next = cur.field(Node::next);
            cur = tx.read_as(&S_NEXT_R, prev_next)?;
        }
        let node = tx.alloc_obj::<Node>()?;
        tx.write_field(&S_INIT_W, node, Node::next, cur)?;
        tx.write_field(&S_INIT_W, node, Node::key, key)?;
        tx.write_field(&S_INIT_W, node, Node::val, val)?;
        tx.write_as(&S_LINK_W, prev_next, node)?;
        let sz = tx.read_field(&S_SIZE_R, self.hdr(), ListHdr::size)?;
        tx.write_field(&S_SIZE_W, self.hdr(), ListHdr::size, sz + 1)?;
        Ok(true)
    }

    /// Remove `key`; returns its value if present. The node's memory is
    /// freed transactionally (deferred to commit for shared nodes).
    pub fn remove(&self, tx: &mut Tx<'_, '_>, key: u64) -> TxResult<Option<u64>> {
        let mut prev_next = self.hdr().field(ListHdr::head);
        let mut cur: TxPtr<Node> = tx.read_as(&S_HEAD_R, prev_next)?;
        while !cur.is_null() {
            let k = tx.read_field(&S_KEY_R, cur, Node::key)?;
            if k == key {
                let val = tx.read_field(&S_VAL_R, cur, Node::val)?;
                let next = tx.read_field(&S_NEXT_R, cur, Node::next)?;
                tx.write_as(&S_LINK_W, prev_next, next)?;
                let sz = tx.read_field(&S_SIZE_R, self.hdr(), ListHdr::size)?;
                tx.write_field(&S_SIZE_W, self.hdr(), ListHdr::size, sz - 1)?;
                tx.free_obj(cur);
                return Ok(Some(val));
            }
            if k > key {
                return Ok(None);
            }
            prev_next = cur.field(Node::next);
            cur = tx.read_as(&S_NEXT_R, prev_next)?;
        }
        Ok(None)
    }

    /// Look up `key`.
    pub fn find(&self, tx: &mut Tx<'_, '_>, key: u64) -> TxResult<Option<u64>> {
        let mut cur = tx.read_field(&S_HEAD_R, self.hdr(), ListHdr::head)?;
        while !cur.is_null() {
            let k = tx.read_field(&S_KEY_R, cur, Node::key)?;
            if k == key {
                return Ok(Some(tx.read_field(&S_VAL_R, cur, Node::val)?));
            }
            if k > key {
                return Ok(None);
            }
            cur = tx.read_field(&S_NEXT_R, cur, Node::next)?;
        }
        Ok(None)
    }

    /// Remove and return the smallest-key entry.
    pub fn pop_front(&self, tx: &mut Tx<'_, '_>) -> TxResult<Option<(u64, u64)>> {
        let head = tx.read_field(&S_HEAD_R, self.hdr(), ListHdr::head)?;
        if head.is_null() {
            return Ok(None);
        }
        let key = tx.read_field(&S_KEY_R, head, Node::key)?;
        let val = tx.read_field(&S_VAL_R, head, Node::val)?;
        let next = tx.read_field(&S_NEXT_R, head, Node::next)?;
        tx.write_field(&S_HEAD_W, self.hdr(), ListHdr::head, next)?;
        let sz = tx.read_field(&S_SIZE_R, self.hdr(), ListHdr::size)?;
        tx.write_field(&S_SIZE_W, self.hdr(), ListHdr::size, sz - 1)?;
        tx.free_obj(head);
        Ok(Some((key, val)))
    }

    /// Transactional length.
    pub fn len(&self, tx: &mut Tx<'_, '_>) -> TxResult<u64> {
        tx.read_field(&S_SIZE_R, self.hdr(), ListHdr::size)
    }

    // --- sequential (non-transactional) helpers for setup & verification --

    /// Non-transactional length (setup/verification only).
    pub fn seq_len(&self, w: &WorkerCtx<'_>) -> u64 {
        w.load_as(self.hdr().field(ListHdr::size))
    }

    /// Collect all `(key, val)` pairs; verification only.
    pub fn seq_collect(&self, w: &WorkerCtx<'_>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cur: TxPtr<Node> = w.load_as(self.hdr().field(ListHdr::head));
        while !cur.is_null() {
            out.push((
                w.load_as(cur.field(Node::key)),
                w.load_as(cur.field(Node::val)),
            ));
            cur = w.load_as(cur.field(Node::next));
        }
        out
    }
}

tx_object! {
    /// The list iterator's transaction-local stack frame (paper Fig. 1a):
    /// one cursor word.
    pub struct Cursor {
        /// The node the iterator will yield next.
        pub cur: TxPtr<Node>,
    }
}

/// Paper Figure 1(a): a list iterator whose cursor lives on the
/// transaction-local stack. The cursor frame is a [`StackFrame`] guard, so
/// it pops itself when the iterator is dropped — the capture window cannot
/// be left unbalanced on any exit path (the old `reset`/`dispose` pairing
/// this replaces could).
///
/// The iterator borrows the transaction; while it is live, run other
/// transactional operations through [`ListIter::tx`].
pub struct ListIter<'a, 'rt> {
    frame: StackFrame<'a, 'rt, Cursor>,
}

impl<'a, 'rt> ListIter<'a, 'rt> {
    /// Begin iterating `list` (replaces `TMLIST_ITER_RESET`): pushes the
    /// one-word cursor frame and seeds it with the list head.
    pub fn begin(tx: &'a mut Tx<'_, 'rt>, list: &TxList) -> TxResult<ListIter<'a, 'rt>> {
        let head = tx.read_field(&S_HEAD_R, list.hdr(), ListHdr::head)?;
        let mut frame = tx.stack_frame::<Cursor>();
        frame.write(&S_ITER_W, Cursor::cur, head)?;
        Ok(ListIter { frame })
    }

    /// `TMLIST_ITER_HASNEXT(&it)`.
    pub fn has_next(&mut self) -> TxResult<bool> {
        Ok(!self.frame.read(&S_ITER_R, Cursor::cur)?.is_null())
    }

    /// `TMLIST_ITER_NEXT(&it)` — returns `(key, val)` and advances.
    // Not `Iterator`: every step is fallible (an STM conflict aborts) and
    // the cursor lives in transactional memory, so the std trait's shape
    // does not fit; the STAMP-style explicit pair is kept on purpose.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> TxResult<(u64, u64)> {
        let cur = self.frame.read(&S_ITER_R, Cursor::cur)?;
        debug_assert!(!cur.is_null(), "iterator past end");
        let tx = self.frame.tx();
        let key = tx.read_field(&S_KEY_R, cur, Node::key)?;
        let val = tx.read_field(&S_VAL_R, cur, Node::val)?;
        let next = tx.read_field(&S_NEXT_R, cur, Node::next)?;
        self.frame.write(&S_ITER_W, Cursor::cur, next)?;
        Ok((key, val))
    }

    /// The underlying transaction, for loop bodies that interleave other
    /// transactional work with the iteration.
    pub fn tx(&mut self) -> &mut Tx<'a, 'rt> {
        self.frame.tx()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm::{StmRuntime, TxConfig};
    use txmem::MemConfig;

    fn rt() -> StmRuntime {
        StmRuntime::new(MemConfig::small(), TxConfig::runtime_tree_full())
    }

    #[test]
    fn insert_find_remove_roundtrip() {
        let rt = rt();
        let list = TxList::create(&rt);
        let mut w = rt.spawn_worker();
        for k in [5u64, 1, 9, 3, 7] {
            assert!(w.txn(|tx| list.insert(tx, k, k * 10)));
        }
        assert!(!w.txn(|tx| list.insert(tx, 5, 0)), "duplicate must fail");
        assert_eq!(w.txn(|tx| list.find(tx, 7)), Some(70));
        assert_eq!(w.txn(|tx| list.find(tx, 8)), None);
        assert_eq!(w.txn(|tx| list.remove(tx, 3)), Some(30));
        assert_eq!(w.txn(|tx| list.remove(tx, 3)), None);
        assert_eq!(list.seq_len(&w), 4);
        let all = list.seq_collect(&w);
        assert_eq!(all, vec![(1, 10), (5, 50), (7, 70), (9, 90)], "sorted");
    }

    #[test]
    fn pop_front_drains_in_order() {
        let rt = rt();
        let list = TxList::create(&rt);
        let mut w = rt.spawn_worker();
        for k in [4u64, 2, 6] {
            w.txn(|tx| list.insert(tx, k, 0));
        }
        assert_eq!(w.txn(|tx| list.pop_front(tx)), Some((2, 0)));
        assert_eq!(w.txn(|tx| list.pop_front(tx)), Some((4, 0)));
        assert_eq!(w.txn(|tx| list.pop_front(tx)), Some((6, 0)));
        assert_eq!(w.txn(|tx| list.pop_front(tx)), None);
    }

    #[test]
    fn iterator_walks_whole_list_with_stack_capture() {
        let rt = rt();
        let list = TxList::create(&rt);
        let mut w = rt.spawn_worker();
        for k in 0..10u64 {
            w.txn(|tx| list.insert(tx, k, k));
        }
        let sum = w.txn(|tx| {
            let mut it = ListIter::begin(tx, &list)?;
            let mut sum = 0;
            while it.has_next()? {
                let (k, _) = it.next()?;
                sum += k;
            }
            Ok(sum)
        });
        assert_eq!(sum, 45);
        assert!(
            w.stats.writes.elided_stack + w.stats.reads.elided_stack > 10,
            "iterator accesses must hit the stack capture check"
        );
    }

    #[test]
    fn node_init_writes_are_elided() {
        let rt = rt();
        let list = TxList::create(&rt);
        let mut w = rt.spawn_worker();
        w.txn(|tx| list.insert(tx, 1, 2));
        assert_eq!(
            w.stats.writes.elided_heap, 3,
            "next/key/val init stores are captured"
        );
    }

    #[test]
    fn insert_rolls_back_with_transaction() {
        let rt = rt();
        let list = TxList::create(&rt);
        let mut w = rt.spawn_worker();
        let r: Result<(), u64> = w.txn_result(|tx| {
            list.insert(tx, 1, 1)?;
            Err(stm::Abort::User(0))
        });
        assert!(r.is_err());
        assert_eq!(list.seq_len(&w), 0);
        assert!(list.seq_collect(&w).is_empty());
    }

    #[test]
    fn iterator_frame_pops_even_on_abort() {
        let rt = rt();
        let list = TxList::create(&rt);
        let mut w = rt.spawn_worker();
        w.txn(|tx| list.insert(tx, 1, 1));
        // An abort propagating out of a live iterator must not leave the
        // cursor frame on the simulated stack.
        let r: Result<(), u64> = w.txn_result(|tx| {
            let mut it = ListIter::begin(tx, &list)?;
            let _ = it.has_next()?;
            Err(stm::Abort::User(7))
        });
        assert!(r.is_err());
        // A follow-up transaction still sees a balanced stack.
        let sum = w.txn(|tx| {
            let mut it = ListIter::begin(tx, &list)?;
            let mut sum = 0;
            while it.has_next()? {
                sum += it.next()?.0;
            }
            Ok(sum)
        });
        assert_eq!(sum, 1);
    }

    #[test]
    fn concurrent_inserts_disjoint_keys() {
        let rt = StmRuntime::new(MemConfig::small(), TxConfig::runtime_tree_full());
        let list = TxList::create(&rt);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let rt = &rt;
                s.spawn(move || {
                    let mut w = rt.spawn_worker();
                    for i in 0..50u64 {
                        w.txn(|tx| list.insert(tx, t * 1000 + i, t));
                    }
                });
            }
        });
        let w = rt.spawn_worker();
        assert_eq!(list.seq_len(&w), 200);
        let all = list.seq_collect(&w);
        assert!(all.windows(2).all(|p| p[0].0 < p[1].0), "sorted unique");
    }
}
