//! Sorted singly-linked list (STAMP `lib/list.c`), keyed by `u64`, unique
//! keys, each node carrying one value word.

use stm::{Site, StmRuntime, Tx, TxResult, WorkerCtx};
use txmem::Addr;

// Node layout (3 words): [next, key, val]
const NEXT: u64 = 0;
const KEY: u64 = 1;
const VAL: u64 = 2;
const NODE_WORDS: u64 = 3;

// Handle layout (2 words): [head, size]
const HEAD: u64 = 0;
const SIZE: u64 = 1;

// --- access sites ---------------------------------------------------------
static S_HEAD_R: Site = Site::shared("list.head.read");
static S_HEAD_W: Site = Site::shared("list.head.write");
static S_NEXT_R: Site = Site::shared("list.next.read");
static S_KEY_R: Site = Site::shared("list.key.read");
static S_VAL_R: Site = Site::shared("list.val.read");
static S_LINK_W: Site = Site::shared("list.link.write");
static S_SIZE_R: Site = Site::shared("list.size.read");
static S_SIZE_W: Site = Site::shared("list.size.write");
// Initialization of a freshly allocated node: captured; visible to the
// static analysis because the allocation happens in the same function.
static S_INIT_W: Site = Site::captured_local("list.node_init.write");
// Iterator cursor on the transaction-local stack (paper Fig. 1a); the
// helper functions are small and inlined, so the compiler analysis sees the
// address-of-local flow.
static S_ITER_W: Site = Site::captured_local("list.iter.write");
static S_ITER_R: Site = Site::captured_local("list.iter.read");

/// A transactional sorted list. The handle is a 2-word header in simulated
/// memory; `TxList` itself is a plain copyable reference.
#[derive(Clone, Copy, Debug)]
pub struct TxList {
    pub handle: Addr,
}

impl TxList {
    /// Create a list during (non-transactional) setup.
    pub fn create(rt: &StmRuntime) -> TxList {
        let handle = rt.alloc_global(2 * 8);
        rt.mem().store(handle.word(HEAD), 0);
        rt.mem().store(handle.word(SIZE), 0);
        TxList { handle }
    }

    /// Create a list inside a transaction (the header is captured memory,
    /// e.g. yada's per-cavity lists).
    pub fn create_tx(tx: &mut Tx<'_, '_>) -> TxResult<TxList> {
        let handle = tx.alloc(2 * 8)?;
        tx.write(&S_INIT_W, handle.word(HEAD), 0)?;
        tx.write(&S_INIT_W, handle.word(SIZE), 0)?;
        Ok(TxList { handle })
    }

    /// Insert `(key, val)`; returns `false` if the key already exists.
    pub fn insert(&self, tx: &mut Tx<'_, '_>, key: u64, val: u64) -> TxResult<bool> {
        // Find predecessor "next-field" address.
        let mut prev_next = self.handle.word(HEAD);
        let mut cur = tx.read_addr(&S_HEAD_R, prev_next)?;
        while !cur.is_null() {
            let k = tx.read(&S_KEY_R, cur.word(KEY))?;
            if k >= key {
                if k == key {
                    return Ok(false);
                }
                break;
            }
            prev_next = cur.word(NEXT);
            cur = tx.read_addr(&S_NEXT_R, prev_next)?;
        }
        let node = tx.alloc(NODE_WORDS * 8)?;
        tx.write_addr(&S_INIT_W, node.word(NEXT), cur)?;
        tx.write(&S_INIT_W, node.word(KEY), key)?;
        tx.write(&S_INIT_W, node.word(VAL), val)?;
        tx.write_addr(&S_LINK_W, prev_next, node)?;
        let sz = tx.read(&S_SIZE_R, self.handle.word(SIZE))?;
        tx.write(&S_SIZE_W, self.handle.word(SIZE), sz + 1)?;
        Ok(true)
    }

    /// Remove `key`; returns its value if present. The node's memory is
    /// freed transactionally (deferred to commit for shared nodes).
    pub fn remove(&self, tx: &mut Tx<'_, '_>, key: u64) -> TxResult<Option<u64>> {
        let mut prev_next = self.handle.word(HEAD);
        let mut cur = tx.read_addr(&S_HEAD_R, prev_next)?;
        while !cur.is_null() {
            let k = tx.read(&S_KEY_R, cur.word(KEY))?;
            if k == key {
                let val = tx.read(&S_VAL_R, cur.word(VAL))?;
                let next = tx.read_addr(&S_NEXT_R, cur.word(NEXT))?;
                tx.write_addr(&S_LINK_W, prev_next, next)?;
                let sz = tx.read(&S_SIZE_R, self.handle.word(SIZE))?;
                tx.write(&S_SIZE_W, self.handle.word(SIZE), sz - 1)?;
                tx.free(cur);
                return Ok(Some(val));
            }
            if k > key {
                return Ok(None);
            }
            prev_next = cur.word(NEXT);
            cur = tx.read_addr(&S_NEXT_R, prev_next)?;
        }
        Ok(None)
    }

    /// Look up `key`.
    pub fn find(&self, tx: &mut Tx<'_, '_>, key: u64) -> TxResult<Option<u64>> {
        let mut cur = tx.read_addr(&S_HEAD_R, self.handle.word(HEAD))?;
        while !cur.is_null() {
            let k = tx.read(&S_KEY_R, cur.word(KEY))?;
            if k == key {
                return Ok(Some(tx.read(&S_VAL_R, cur.word(VAL))?));
            }
            if k > key {
                return Ok(None);
            }
            cur = tx.read_addr(&S_NEXT_R, cur.word(NEXT))?;
        }
        Ok(None)
    }

    /// Remove and return the smallest-key entry.
    pub fn pop_front(&self, tx: &mut Tx<'_, '_>) -> TxResult<Option<(u64, u64)>> {
        let head = tx.read_addr(&S_HEAD_R, self.handle.word(HEAD))?;
        if head.is_null() {
            return Ok(None);
        }
        let key = tx.read(&S_KEY_R, head.word(KEY))?;
        let val = tx.read(&S_VAL_R, head.word(VAL))?;
        let next = tx.read_addr(&S_NEXT_R, head.word(NEXT))?;
        tx.write_addr(&S_HEAD_W, self.handle.word(HEAD), next)?;
        let sz = tx.read(&S_SIZE_R, self.handle.word(SIZE))?;
        tx.write(&S_SIZE_W, self.handle.word(SIZE), sz - 1)?;
        tx.free(head);
        Ok(Some((key, val)))
    }

    /// Transactional length.
    pub fn len(&self, tx: &mut Tx<'_, '_>) -> TxResult<u64> {
        tx.read(&S_SIZE_R, self.handle.word(SIZE))
    }

    // --- sequential (non-transactional) helpers for setup & verification --

    pub fn seq_len(&self, w: &WorkerCtx<'_>) -> u64 {
        w.load(self.handle.word(SIZE))
    }

    /// Collect all `(key, val)` pairs; verification only.
    pub fn seq_collect(&self, w: &WorkerCtx<'_>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cur = w.load_addr(self.handle.word(HEAD));
        while !cur.is_null() {
            out.push((w.load(cur.word(KEY)), w.load(cur.word(VAL))));
            cur = w.load_addr(cur.word(NEXT));
        }
        out
    }
}

/// Paper Figure 1(a): a list iterator allocated on the transaction-local
/// stack. `reset` pushes a one-word frame holding the cursor; every
/// `has_next`/`next` reads and writes that captured stack word.
pub struct ListIter {
    frame: Addr,
}

impl ListIter {
    /// `TMLIST_ITER_RESET(&it, list)`.
    pub fn reset(tx: &mut Tx<'_, '_>, list: &TxList) -> TxResult<ListIter> {
        let frame = tx.stack_push(1);
        let head = tx.read_addr(&S_HEAD_R, list.handle.word(HEAD))?;
        tx.write_addr(&S_ITER_W, frame, head)?;
        Ok(ListIter { frame })
    }

    /// `TMLIST_ITER_HASNEXT(&it)`.
    pub fn has_next(&self, tx: &mut Tx<'_, '_>) -> TxResult<bool> {
        Ok(!tx.read_addr(&S_ITER_R, self.frame)?.is_null())
    }

    /// `TMLIST_ITER_NEXT(&it)` — returns `(key, val)` and advances.
    pub fn next(&self, tx: &mut Tx<'_, '_>) -> TxResult<(u64, u64)> {
        let cur = tx.read_addr(&S_ITER_R, self.frame)?;
        debug_assert!(!cur.is_null(), "iterator past end");
        let key = tx.read(&S_KEY_R, cur.word(KEY))?;
        let val = tx.read(&S_VAL_R, cur.word(VAL))?;
        let next = tx.read_addr(&S_NEXT_R, cur.word(NEXT))?;
        tx.write_addr(&S_ITER_W, self.frame, next)?;
        Ok((key, val))
    }

    /// Pop the iterator's stack frame (must pair with `reset`).
    pub fn dispose(self, tx: &mut Tx<'_, '_>) {
        tx.stack_pop(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm::{StmRuntime, TxConfig};
    use txmem::MemConfig;

    fn rt() -> StmRuntime {
        StmRuntime::new(MemConfig::small(), TxConfig::runtime_tree_full())
    }

    #[test]
    fn insert_find_remove_roundtrip() {
        let rt = rt();
        let list = TxList::create(&rt);
        let mut w = rt.spawn_worker();
        for k in [5u64, 1, 9, 3, 7] {
            assert!(w.txn(|tx| list.insert(tx, k, k * 10)));
        }
        assert!(!w.txn(|tx| list.insert(tx, 5, 0)), "duplicate must fail");
        assert_eq!(w.txn(|tx| list.find(tx, 7)), Some(70));
        assert_eq!(w.txn(|tx| list.find(tx, 8)), None);
        assert_eq!(w.txn(|tx| list.remove(tx, 3)), Some(30));
        assert_eq!(w.txn(|tx| list.remove(tx, 3)), None);
        assert_eq!(list.seq_len(&w), 4);
        let all = list.seq_collect(&w);
        assert_eq!(all, vec![(1, 10), (5, 50), (7, 70), (9, 90)], "sorted");
    }

    #[test]
    fn pop_front_drains_in_order() {
        let rt = rt();
        let list = TxList::create(&rt);
        let mut w = rt.spawn_worker();
        for k in [4u64, 2, 6] {
            w.txn(|tx| list.insert(tx, k, 0));
        }
        assert_eq!(w.txn(|tx| list.pop_front(tx)), Some((2, 0)));
        assert_eq!(w.txn(|tx| list.pop_front(tx)), Some((4, 0)));
        assert_eq!(w.txn(|tx| list.pop_front(tx)), Some((6, 0)));
        assert_eq!(w.txn(|tx| list.pop_front(tx)), None);
    }

    #[test]
    fn iterator_walks_whole_list_with_stack_capture() {
        let rt = rt();
        let list = TxList::create(&rt);
        let mut w = rt.spawn_worker();
        for k in 0..10u64 {
            w.txn(|tx| list.insert(tx, k, k));
        }
        let sum = w.txn(|tx| {
            let it = ListIter::reset(tx, &list)?;
            let mut sum = 0;
            while it.has_next(tx)? {
                let (k, _) = it.next(tx)?;
                sum += k;
            }
            it.dispose(tx);
            Ok(sum)
        });
        assert_eq!(sum, 45);
        assert!(
            w.stats.writes.elided_stack + w.stats.reads.elided_stack > 10,
            "iterator accesses must hit the stack capture check"
        );
    }

    #[test]
    fn node_init_writes_are_elided() {
        let rt = rt();
        let list = TxList::create(&rt);
        let mut w = rt.spawn_worker();
        w.txn(|tx| list.insert(tx, 1, 2));
        assert_eq!(
            w.stats.writes.elided_heap, 3,
            "next/key/val init stores are captured"
        );
    }

    #[test]
    fn insert_rolls_back_with_transaction() {
        let rt = rt();
        let list = TxList::create(&rt);
        let mut w = rt.spawn_worker();
        let r: Result<(), u64> = w.txn_result(|tx| {
            list.insert(tx, 1, 1)?;
            Err(stm::Abort::User(0))
        });
        assert!(r.is_err());
        assert_eq!(list.seq_len(&w), 0);
        assert!(list.seq_collect(&w).is_empty());
    }

    #[test]
    fn concurrent_inserts_disjoint_keys() {
        let rt = StmRuntime::new(MemConfig::small(), TxConfig::runtime_tree_full());
        let list = TxList::create(&rt);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let rt = &rt;
                s.spawn(move || {
                    let mut w = rt.spawn_worker();
                    for i in 0..50u64 {
                        w.txn(|tx| list.insert(tx, t * 1000 + i, t));
                    }
                });
            }
        });
        let w = rt.spawn_worker();
        assert_eq!(list.seq_len(&w), 200);
        let all = list.seq_collect(&w);
        assert!(all.windows(2).all(|p| p[0].0 < p[1].0), "sorted unique");
    }
}
