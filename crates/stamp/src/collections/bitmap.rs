//! Transactional bitmap (STAMP `lib/bitmap.c`).

use stm::{Site, StmRuntime, Tx, TxResult, WorkerCtx};
use txmem::Addr;

// Handle: [nbits, word_0, word_1, ...]
const NBITS: u64 = 0;
const WORDS0: u64 = 1;

static S_BITS_R: Site = Site::shared("bitmap.read");
static S_BITS_W: Site = Site::shared("bitmap.write");

#[derive(Clone, Copy, Debug)]
pub struct TxBitmap {
    pub handle: Addr,
}

impl TxBitmap {
    pub fn create(rt: &StmRuntime, nbits: u64) -> TxBitmap {
        let words = nbits.div_ceil(64);
        let handle = rt.alloc_global((WORDS0 + words) * 8);
        rt.mem().store(handle.word(NBITS), nbits);
        for i in 0..words {
            rt.mem().store(handle.word(WORDS0 + i), 0);
        }
        TxBitmap { handle }
    }

    /// Set bit `i`; returns `true` if it was previously clear.
    pub fn set(&self, tx: &mut Tx<'_, '_>, i: u64) -> TxResult<bool> {
        let slot = self.handle.word(WORDS0 + i / 64);
        let mask = 1u64 << (i % 64);
        let w = tx.read(&S_BITS_R, slot)?;
        if w & mask != 0 {
            return Ok(false);
        }
        tx.write(&S_BITS_W, slot, w | mask)?;
        Ok(true)
    }

    pub fn test(&self, tx: &mut Tx<'_, '_>, i: u64) -> TxResult<bool> {
        let slot = self.handle.word(WORDS0 + i / 64);
        Ok(tx.read(&S_BITS_R, slot)? & (1 << (i % 64)) != 0)
    }

    pub fn clear(&self, tx: &mut Tx<'_, '_>, i: u64) -> TxResult<()> {
        let slot = self.handle.word(WORDS0 + i / 64);
        let w = tx.read(&S_BITS_R, slot)?;
        tx.write(&S_BITS_W, slot, w & !(1 << (i % 64)))
    }

    /// Set every bit in `[lo, hi)`. Partial edge words are read-modify-
    /// written individually; full interior words lower to one ranged
    /// [`Tx::fill_range`], classifying capture once for the whole interior
    /// instead of once per word.
    pub fn set_range(&self, tx: &mut Tx<'_, '_>, lo: u64, hi: u64) -> TxResult<()> {
        self.fill_bits(tx, lo, hi, true)
    }

    /// Clear every bit in `[lo, hi)`; see [`TxBitmap::set_range`].
    pub fn clear_range(&self, tx: &mut Tx<'_, '_>, lo: u64, hi: u64) -> TxResult<()> {
        self.fill_bits(tx, lo, hi, false)
    }

    fn fill_bits(&self, tx: &mut Tx<'_, '_>, lo: u64, hi: u64, set: bool) -> TxResult<()> {
        if lo >= hi {
            return Ok(());
        }
        let (wlo, whi) = (lo / 64, (hi - 1) / 64);
        let head_mask = !0u64 << (lo % 64);
        let tail_mask = !0u64 >> (63 - (hi - 1) % 64);
        if wlo == whi {
            return self.rmw_word(tx, wlo, head_mask & tail_mask, set);
        }
        self.rmw_word(tx, wlo, head_mask, set)?;
        let interior = whi - wlo - 1;
        if interior > 0 {
            let fill = if set { !0u64 } else { 0 };
            tx.fill_range(
                &S_BITS_W,
                self.handle.word(WORDS0 + wlo + 1),
                fill,
                interior,
            )?;
        }
        self.rmw_word(tx, whi, tail_mask, set)
    }

    fn rmw_word(&self, tx: &mut Tx<'_, '_>, word: u64, mask: u64, set: bool) -> TxResult<()> {
        let slot = self.handle.word(WORDS0 + word);
        let w = tx.read(&S_BITS_R, slot)?;
        let new = if set { w | mask } else { w & !mask };
        tx.write(&S_BITS_W, slot, new)
    }

    pub fn seq_count(&self, w: &WorkerCtx<'_>) -> u64 {
        let nbits = w.load(self.handle.word(NBITS));
        let words = nbits.div_ceil(64);
        (0..words)
            .map(|i| w.load(self.handle.word(WORDS0 + i)).count_ones() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm::{StmRuntime, TxConfig};
    use txmem::MemConfig;

    #[test]
    fn set_test_clear() {
        let rt = StmRuntime::new(MemConfig::small(), TxConfig::default());
        let b = TxBitmap::create(&rt, 200);
        let mut w = rt.spawn_worker();
        assert!(w.txn(|tx| b.set(tx, 7)));
        assert!(!w.txn(|tx| b.set(tx, 7)), "second set reports already-set");
        assert!(w.txn(|tx| b.set(tx, 130)));
        assert!(w.txn(|tx| b.test(tx, 7)));
        assert!(!w.txn(|tx| b.test(tx, 8)));
        assert_eq!(b.seq_count(&w), 2);
        w.txn(|tx| b.clear(tx, 7));
        assert_eq!(b.seq_count(&w), 1);
    }

    #[test]
    fn range_ops_match_per_bit_loops() {
        let rt = StmRuntime::new(MemConfig::small(), TxConfig::default());
        let b = TxBitmap::create(&rt, 1024);
        let mut w = rt.spawn_worker();
        // Straddles two edge words with a multi-word interior.
        w.txn(|tx| b.set_range(tx, 37, 700));
        assert_eq!(b.seq_count(&w), 700 - 37);
        assert!(!w.txn(|tx| b.test(tx, 36)));
        assert!(w.txn(|tx| b.test(tx, 37)));
        assert!(w.txn(|tx| b.test(tx, 699)));
        assert!(!w.txn(|tx| b.test(tx, 700)));
        // Single-word range, then a clear that straddles the seam.
        w.txn(|tx| b.set_range(tx, 900, 910));
        assert_eq!(b.seq_count(&w), 700 - 37 + 10);
        w.txn(|tx| b.clear_range(tx, 40, 650));
        assert_eq!(b.seq_count(&w), 3 + 50 + 10);
        // Empty range is a no-op.
        w.txn(|tx| b.set_range(tx, 5, 5));
        assert_eq!(b.seq_count(&w), 3 + 50 + 10);
    }

    #[test]
    fn concurrent_claims_are_unique() {
        // Each bit may be claimed by exactly one thread (ssca2-style).
        let rt = StmRuntime::new(MemConfig::small(), TxConfig::default());
        let b = TxBitmap::create(&rt, 256);
        let claims = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let rt = &rt;
                let b = &b;
                let claims = &claims;
                s.spawn(move || {
                    let mut w = rt.spawn_worker();
                    let mut rng = crate::rng::SplitMix64::new(t + 10);
                    let mut mine = 0;
                    for _ in 0..300 {
                        let bit = rng.below(256);
                        if w.txn(|tx| b.set(tx, bit)) {
                            mine += 1;
                        }
                    }
                    claims.fetch_add(mine, std::sync::atomic::Ordering::Relaxed);
                });
            }
        });
        let w = rt.spawn_worker();
        assert_eq!(
            claims.load(std::sync::atomic::Ordering::Relaxed),
            b.seq_count(&w),
            "every set bit claimed exactly once"
        );
    }
}
