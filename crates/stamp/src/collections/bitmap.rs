//! Transactional bitmap (STAMP `lib/bitmap.c`).

use stm::{Site, StmRuntime, Tx, TxResult, WorkerCtx};
use txmem::Addr;

// Handle: [nbits, word_0, word_1, ...]
const NBITS: u64 = 0;
const WORDS0: u64 = 1;

static S_BITS_R: Site = Site::shared("bitmap.read");
static S_BITS_W: Site = Site::shared("bitmap.write");

#[derive(Clone, Copy, Debug)]
pub struct TxBitmap {
    pub handle: Addr,
}

impl TxBitmap {
    pub fn create(rt: &StmRuntime, nbits: u64) -> TxBitmap {
        let words = nbits.div_ceil(64);
        let handle = rt.alloc_global((WORDS0 + words) * 8);
        rt.mem().store(handle.word(NBITS), nbits);
        for i in 0..words {
            rt.mem().store(handle.word(WORDS0 + i), 0);
        }
        TxBitmap { handle }
    }

    /// Set bit `i`; returns `true` if it was previously clear.
    pub fn set(&self, tx: &mut Tx<'_, '_>, i: u64) -> TxResult<bool> {
        let slot = self.handle.word(WORDS0 + i / 64);
        let mask = 1u64 << (i % 64);
        let w = tx.read(&S_BITS_R, slot)?;
        if w & mask != 0 {
            return Ok(false);
        }
        tx.write(&S_BITS_W, slot, w | mask)?;
        Ok(true)
    }

    pub fn test(&self, tx: &mut Tx<'_, '_>, i: u64) -> TxResult<bool> {
        let slot = self.handle.word(WORDS0 + i / 64);
        Ok(tx.read(&S_BITS_R, slot)? & (1 << (i % 64)) != 0)
    }

    pub fn clear(&self, tx: &mut Tx<'_, '_>, i: u64) -> TxResult<()> {
        let slot = self.handle.word(WORDS0 + i / 64);
        let w = tx.read(&S_BITS_R, slot)?;
        tx.write(&S_BITS_W, slot, w & !(1 << (i % 64)))
    }

    pub fn seq_count(&self, w: &WorkerCtx<'_>) -> u64 {
        let nbits = w.load(self.handle.word(NBITS));
        let words = nbits.div_ceil(64);
        (0..words)
            .map(|i| w.load(self.handle.word(WORDS0 + i)).count_ones() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm::{StmRuntime, TxConfig};
    use txmem::MemConfig;

    #[test]
    fn set_test_clear() {
        let rt = StmRuntime::new(MemConfig::small(), TxConfig::default());
        let b = TxBitmap::create(&rt, 200);
        let mut w = rt.spawn_worker();
        assert!(w.txn(|tx| b.set(tx, 7)));
        assert!(!w.txn(|tx| b.set(tx, 7)), "second set reports already-set");
        assert!(w.txn(|tx| b.set(tx, 130)));
        assert!(w.txn(|tx| b.test(tx, 7)));
        assert!(!w.txn(|tx| b.test(tx, 8)));
        assert_eq!(b.seq_count(&w), 2);
        w.txn(|tx| b.clear(tx, 7));
        assert_eq!(b.seq_count(&w), 1);
    }

    #[test]
    fn concurrent_claims_are_unique() {
        // Each bit may be claimed by exactly one thread (ssca2-style).
        let rt = StmRuntime::new(MemConfig::small(), TxConfig::default());
        let b = TxBitmap::create(&rt, 256);
        let claims = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let rt = &rt;
                let b = &b;
                let claims = &claims;
                s.spawn(move || {
                    let mut w = rt.spawn_worker();
                    let mut rng = crate::rng::SplitMix64::new(t + 10);
                    let mut mine = 0;
                    for _ in 0..300 {
                        let bit = rng.below(256);
                        if w.txn(|tx| b.set(tx, bit)) {
                            mine += 1;
                        }
                    }
                    claims.fetch_add(mine, std::sync::atomic::Ordering::Relaxed);
                });
            }
        });
        let w = rt.spawn_worker();
        assert_eq!(
            claims.load(std::sync::atomic::Ordering::Relaxed),
            b.seq_count(&w),
            "every set bit claimed exactly once"
        );
    }
}
