//! Transactional growable circular queue (STAMP `lib/queue.c`).

use stm::{Site, StmRuntime, Tx, TxResult, WorkerCtx};
use txmem::Addr;

// Handle: [capacity, head, tail, data_ptr]
const CAP: u64 = 0;
const HEAD: u64 = 1;
const TAIL: u64 = 2;
const DATA: u64 = 3;

static S_META_R: Site = Site::shared("queue.meta.read");
static S_META_W: Site = Site::shared("queue.meta.write");
static S_DATA_R: Site = Site::shared("queue.data.read");
static S_DATA_W: Site = Site::shared("queue.data.write");
// Copying into a freshly allocated (captured) backing array during grow.
static S_GROW_W: Site = Site::captured_local("queue.grow.write");

#[derive(Clone, Copy, Debug)]
pub struct TxQueue {
    pub handle: Addr,
}

impl TxQueue {
    pub fn create(rt: &StmRuntime, capacity: u64) -> TxQueue {
        let capacity = capacity.max(2);
        let handle = rt.alloc_global(4 * 8);
        let data = rt.alloc_global(capacity * 8);
        rt.mem().store(handle.word(CAP), capacity);
        rt.mem().store(handle.word(HEAD), 0);
        rt.mem().store(handle.word(TAIL), 0);
        rt.mem().store(handle.word(DATA), data.raw());
        TxQueue { handle }
    }

    /// Push to the tail, growing the backing array when full.
    pub fn push(&self, tx: &mut Tx<'_, '_>, val: u64) -> TxResult<()> {
        let cap = tx.read(&S_META_R, self.handle.word(CAP))?;
        let head = tx.read(&S_META_R, self.handle.word(HEAD))?;
        let tail = tx.read(&S_META_R, self.handle.word(TAIL))?;
        let data = tx.read_addr(&S_META_R, self.handle.word(DATA))?;
        if (tail + 1) % cap == head {
            // Grow: the new array is captured, so the copy-out writes are
            // elidable (and the old array is freed transactionally).
            let new_cap = cap * 2;
            let new_data = tx.alloc(new_cap * 8)?;
            let mut n = 0u64;
            let mut i = head;
            while i != tail {
                let v = tx.read(&S_DATA_R, data.word(i))?;
                tx.write(&S_GROW_W, new_data.word(n), v)?;
                n += 1;
                i = (i + 1) % cap;
            }
            tx.write(&S_GROW_W, new_data.word(n), val)?;
            n += 1;
            tx.free(data);
            tx.write(&S_META_W, self.handle.word(CAP), new_cap)?;
            tx.write(&S_META_W, self.handle.word(HEAD), 0)?;
            tx.write(&S_META_W, self.handle.word(TAIL), n)?;
            tx.write_addr(&S_META_W, self.handle.word(DATA), new_data)?;
            return Ok(());
        }
        tx.write(&S_DATA_W, data.word(tail), val)?;
        tx.write(&S_META_W, self.handle.word(TAIL), (tail + 1) % cap)?;
        Ok(())
    }

    /// Pop from the head.
    pub fn pop(&self, tx: &mut Tx<'_, '_>) -> TxResult<Option<u64>> {
        let head = tx.read(&S_META_R, self.handle.word(HEAD))?;
        let tail = tx.read(&S_META_R, self.handle.word(TAIL))?;
        if head == tail {
            return Ok(None);
        }
        let cap = tx.read(&S_META_R, self.handle.word(CAP))?;
        let data = tx.read_addr(&S_META_R, self.handle.word(DATA))?;
        let val = tx.read(&S_DATA_R, data.word(head))?;
        tx.write(&S_META_W, self.handle.word(HEAD), (head + 1) % cap)?;
        Ok(Some(val))
    }

    pub fn is_empty(&self, tx: &mut Tx<'_, '_>) -> TxResult<bool> {
        let head = tx.read(&S_META_R, self.handle.word(HEAD))?;
        let tail = tx.read(&S_META_R, self.handle.word(TAIL))?;
        Ok(head == tail)
    }

    pub fn seq_len(&self, w: &WorkerCtx<'_>) -> u64 {
        let cap = w.load(self.handle.word(CAP));
        let head = w.load(self.handle.word(HEAD));
        let tail = w.load(self.handle.word(TAIL));
        (tail + cap - head) % cap
    }

    /// Non-transactional push for building work queues during setup.
    pub fn seq_push(&self, w: &WorkerCtx<'_>, val: u64) {
        let cap = w.load(self.handle.word(CAP));
        let head = w.load(self.handle.word(HEAD));
        let tail = w.load(self.handle.word(TAIL));
        assert!(
            (tail + 1) % cap != head,
            "seq_push into full queue (size for setup)"
        );
        let data = w.load_addr(self.handle.word(DATA));
        w.store(data.word(tail), val);
        w.store(self.handle.word(TAIL), (tail + 1) % cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm::{StmRuntime, TxConfig};
    use txmem::MemConfig;

    fn rt() -> StmRuntime {
        StmRuntime::new(MemConfig::small(), TxConfig::runtime_tree_full())
    }

    #[test]
    fn fifo_order() {
        let rt = rt();
        let q = TxQueue::create(&rt, 4);
        let mut w = rt.spawn_worker();
        for v in 1..=3u64 {
            w.txn(|tx| q.push(tx, v));
        }
        assert_eq!(w.txn(|tx| q.pop(tx)), Some(1));
        assert_eq!(w.txn(|tx| q.pop(tx)), Some(2));
        assert_eq!(w.txn(|tx| q.pop(tx)), Some(3));
        assert_eq!(w.txn(|tx| q.pop(tx)), None);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let rt = rt();
        let q = TxQueue::create(&rt, 2);
        let mut w = rt.spawn_worker();
        for v in 0..100u64 {
            w.txn(|tx| q.push(tx, v));
        }
        assert_eq!(q.seq_len(&w), 100);
        for v in 0..100u64 {
            assert_eq!(w.txn(|tx| q.pop(tx)), Some(v));
        }
        assert!(w.txn(|tx| q.is_empty(tx)));
    }

    #[test]
    fn wraparound_works() {
        let rt = rt();
        let q = TxQueue::create(&rt, 4);
        let mut w = rt.spawn_worker();
        for round in 0..10u64 {
            w.txn(|tx| q.push(tx, round));
            w.txn(|tx| q.push(tx, round + 100));
            assert_eq!(w.txn(|tx| q.pop(tx)), Some(round));
            assert_eq!(w.txn(|tx| q.pop(tx)), Some(round + 100));
        }
    }

    #[test]
    fn concurrent_producers_consumers_conserve_items() {
        let rt = rt();
        let q = TxQueue::create(&rt, 8);
        let produced: u64 = 4 * 100;
        let popped = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..2u64 {
                let rt = &rt;
                s.spawn(move || {
                    let mut w = rt.spawn_worker();
                    for i in 0..200u64 {
                        w.txn(|tx| q.push(tx, t * 1000 + i));
                    }
                });
            }
            for _ in 0..2 {
                let rt = &rt;
                let popped = &popped;
                s.spawn(move || {
                    let mut w = rt.spawn_worker();
                    let mut got = 0;
                    let mut dry = 0;
                    while dry < 200 {
                        match w.txn(|tx| q.pop(tx)) {
                            Some(_) => {
                                got += 1;
                                dry = 0;
                            }
                            None => {
                                dry += 1;
                                std::thread::yield_now();
                            }
                        }
                    }
                    popped.fetch_add(got, std::sync::atomic::Ordering::Relaxed);
                });
            }
        });
        let w = rt.spawn_worker();
        let remaining = q.seq_len(&w);
        assert_eq!(
            popped.load(std::sync::atomic::Ordering::Relaxed) + remaining,
            produced
        );
    }

    #[test]
    fn seq_push_builds_work_queue() {
        let rt = rt();
        let q = TxQueue::create(&rt, 16);
        let w = rt.spawn_worker();
        for v in 0..10u64 {
            q.seq_push(&w, v);
        }
        assert_eq!(q.seq_len(&w), 10);
    }
}
