//! Transactional growable circular queue (STAMP `lib/queue.c`), built on
//! the typed object layer: the header is a `tx_object!` layout whose
//! `data` field is a typed buffer handle (`TxBuf<u64>`), so slot accesses
//! go through `read_elem`/`write_elem` instead of hand-computed offsets.

use stm::{tx_object, Site, StmRuntime, Tx, TxBuf, TxObject, TxPtr, TxResult, WorkerCtx};
use txmem::{words_to_bytes, Addr};

tx_object! {
    /// The queue header (what [`TxQueue::handle`] points at).
    pub struct QueueHdr {
        /// Backing-array capacity in slots (one slot is kept empty to
        /// distinguish full from empty).
        pub cap: u64,
        /// Index of the next slot to pop.
        pub head: u64,
        /// Index of the next slot to push.
        pub tail: u64,
        /// The backing array.
        pub data: TxBuf<u64>,
    }
}

static S_META_R: Site = Site::shared("queue.meta.read");
static S_META_W: Site = Site::shared("queue.meta.write");
static S_DATA_R: Site = Site::shared("queue.data.read");
static S_DATA_W: Site = Site::shared("queue.data.write");
// Copying into a freshly allocated (captured) backing array during grow.
static S_GROW_W: Site = Site::captured_local("queue.grow.write");

/// A transactional FIFO queue handle.
#[derive(Clone, Copy, Debug)]
pub struct TxQueue {
    /// Address of the [`QueueHdr`] (raw so workloads can stash queue
    /// handles in plain memory words).
    pub handle: Addr,
}

impl TxQueue {
    /// The typed view of the header.
    #[inline]
    fn hdr(&self) -> TxPtr<QueueHdr> {
        TxPtr::from_addr(self.handle)
    }

    /// Create a queue during (non-transactional) setup.
    pub fn create(rt: &StmRuntime, capacity: u64) -> TxQueue {
        let capacity = capacity.max(2);
        let handle = rt.alloc_global(QueueHdr::BYTES);
        let data = rt.alloc_global(words_to_bytes(capacity));
        let h = TxPtr::<QueueHdr>::from_addr(handle);
        rt.mem().store(h.field(QueueHdr::cap), capacity);
        rt.mem().store(h.field(QueueHdr::head), 0);
        rt.mem().store(h.field(QueueHdr::tail), 0);
        rt.mem().store(h.field(QueueHdr::data), data.raw());
        TxQueue { handle }
    }

    /// Push to the tail, growing the backing array when full.
    pub fn push(&self, tx: &mut Tx<'_, '_>, val: u64) -> TxResult<()> {
        let h = self.hdr();
        let cap = tx.read_field(&S_META_R, h, QueueHdr::cap)?;
        let head = tx.read_field(&S_META_R, h, QueueHdr::head)?;
        let tail = tx.read_field(&S_META_R, h, QueueHdr::tail)?;
        let data = tx.read_field(&S_META_R, h, QueueHdr::data)?;
        if (tail + 1) % cap == head {
            // Grow: the new array is captured, so the copy-out writes are
            // elidable (and the old array is freed transactionally). The
            // live elements form at most two contiguous segments, each
            // lowered to one ranged copy — classification once per
            // segment instead of once per element.
            let new_cap = cap * 2;
            let new_data = tx.alloc_buf::<u64>(new_cap)?;
            let mut n = (tail + cap - head) % cap;
            if tail >= head {
                tx.copy_range(&S_DATA_R, &S_GROW_W, new_data.elem(0), data.elem(head), n)?;
            } else {
                let first = cap - head;
                tx.copy_range(
                    &S_DATA_R,
                    &S_GROW_W,
                    new_data.elem(0),
                    data.elem(head),
                    first,
                )?;
                tx.copy_range(
                    &S_DATA_R,
                    &S_GROW_W,
                    new_data.elem(first),
                    data.elem(0),
                    tail,
                )?;
            }
            tx.write_elem(&S_GROW_W, new_data, n, val)?;
            n += 1;
            tx.free_buf(data);
            tx.write_field(&S_META_W, h, QueueHdr::cap, new_cap)?;
            tx.write_field(&S_META_W, h, QueueHdr::head, 0)?;
            tx.write_field(&S_META_W, h, QueueHdr::tail, n)?;
            tx.write_field(&S_META_W, h, QueueHdr::data, new_data)?;
            return Ok(());
        }
        tx.write_elem(&S_DATA_W, data, tail, val)?;
        tx.write_field(&S_META_W, h, QueueHdr::tail, (tail + 1) % cap)?;
        Ok(())
    }

    /// Bulk push: enqueue every value of `vals`, in order. When the queue
    /// has room, the values land as at most two ranged writes (the free
    /// region's contiguous segments); when it would overflow, falls back
    /// to the per-item [`TxQueue::push`] loop, which grows as needed.
    pub fn push_many(&self, tx: &mut Tx<'_, '_>, vals: &[u64]) -> TxResult<()> {
        if vals.is_empty() {
            return Ok(());
        }
        let h = self.hdr();
        let cap = tx.read_field(&S_META_R, h, QueueHdr::cap)?;
        let head = tx.read_field(&S_META_R, h, QueueHdr::head)?;
        let tail = tx.read_field(&S_META_R, h, QueueHdr::tail)?;
        let free = cap - 1 - (tail + cap - head) % cap;
        if vals.len() as u64 > free {
            for &v in vals {
                self.push(tx, v)?;
            }
            return Ok(());
        }
        let data = tx.read_field(&S_META_R, h, QueueHdr::data)?;
        let first = (cap - tail).min(vals.len() as u64) as usize;
        tx.write_range(&S_DATA_W, data.elem(tail), &vals[..first])?;
        if first < vals.len() {
            tx.write_range(&S_DATA_W, data.elem(0), &vals[first..])?;
        }
        tx.write_field(
            &S_META_W,
            h,
            QueueHdr::tail,
            (tail + vals.len() as u64) % cap,
        )?;
        Ok(())
    }

    /// Bulk pop: dequeue up to `out.len()` values into `out`, returning
    /// how many were popped. The occupied region's at most two contiguous
    /// segments are read with ranged barriers.
    pub fn pop_many(&self, tx: &mut Tx<'_, '_>, out: &mut [u64]) -> TxResult<u64> {
        let h = self.hdr();
        let head = tx.read_field(&S_META_R, h, QueueHdr::head)?;
        let tail = tx.read_field(&S_META_R, h, QueueHdr::tail)?;
        if head == tail || out.is_empty() {
            return Ok(0);
        }
        let cap = tx.read_field(&S_META_R, h, QueueHdr::cap)?;
        let data = tx.read_field(&S_META_R, h, QueueHdr::data)?;
        let avail = (tail + cap - head) % cap;
        let n = avail.min(out.len() as u64);
        let first = (cap - head).min(n) as usize;
        tx.read_range(&S_DATA_R, data.elem(head), &mut out[..first])?;
        if (first as u64) < n {
            tx.read_range(&S_DATA_R, data.elem(0), &mut out[first..n as usize])?;
        }
        tx.write_field(&S_META_W, h, QueueHdr::head, (head + n) % cap)?;
        Ok(n)
    }

    /// Pop from the head.
    pub fn pop(&self, tx: &mut Tx<'_, '_>) -> TxResult<Option<u64>> {
        let h = self.hdr();
        let head = tx.read_field(&S_META_R, h, QueueHdr::head)?;
        let tail = tx.read_field(&S_META_R, h, QueueHdr::tail)?;
        if head == tail {
            return Ok(None);
        }
        let cap = tx.read_field(&S_META_R, h, QueueHdr::cap)?;
        let data = tx.read_field(&S_META_R, h, QueueHdr::data)?;
        let val = tx.read_elem(&S_DATA_R, data, head)?;
        tx.write_field(&S_META_W, h, QueueHdr::head, (head + 1) % cap)?;
        Ok(Some(val))
    }

    /// Transactional emptiness test.
    pub fn is_empty(&self, tx: &mut Tx<'_, '_>) -> TxResult<bool> {
        let h = self.hdr();
        let head = tx.read_field(&S_META_R, h, QueueHdr::head)?;
        let tail = tx.read_field(&S_META_R, h, QueueHdr::tail)?;
        Ok(head == tail)
    }

    /// Non-transactional length (setup/verification only).
    pub fn seq_len(&self, w: &WorkerCtx<'_>) -> u64 {
        let h = self.hdr();
        let cap: u64 = w.load_as(h.field(QueueHdr::cap));
        let head: u64 = w.load_as(h.field(QueueHdr::head));
        let tail: u64 = w.load_as(h.field(QueueHdr::tail));
        (tail + cap - head) % cap
    }

    /// Non-transactional push for building work queues during setup.
    pub fn seq_push(&self, w: &WorkerCtx<'_>, val: u64) {
        let h = self.hdr();
        let cap: u64 = w.load_as(h.field(QueueHdr::cap));
        let head: u64 = w.load_as(h.field(QueueHdr::head));
        let tail: u64 = w.load_as(h.field(QueueHdr::tail));
        assert!(
            (tail + 1) % cap != head,
            "seq_push into full queue (size for setup)"
        );
        let data: TxBuf<u64> = w.load_as(h.field(QueueHdr::data));
        w.store(data.elem(tail), val);
        w.store(h.field(QueueHdr::tail), (tail + 1) % cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm::{StmRuntime, TxConfig};
    use txmem::MemConfig;

    fn rt() -> StmRuntime {
        StmRuntime::new(MemConfig::small(), TxConfig::runtime_tree_full())
    }

    #[test]
    fn fifo_order() {
        let rt = rt();
        let q = TxQueue::create(&rt, 4);
        let mut w = rt.spawn_worker();
        for v in 1..=3u64 {
            w.txn(|tx| q.push(tx, v));
        }
        assert_eq!(w.txn(|tx| q.pop(tx)), Some(1));
        assert_eq!(w.txn(|tx| q.pop(tx)), Some(2));
        assert_eq!(w.txn(|tx| q.pop(tx)), Some(3));
        assert_eq!(w.txn(|tx| q.pop(tx)), None);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let rt = rt();
        let q = TxQueue::create(&rt, 2);
        let mut w = rt.spawn_worker();
        for v in 0..100u64 {
            w.txn(|tx| q.push(tx, v));
        }
        assert_eq!(q.seq_len(&w), 100);
        for v in 0..100u64 {
            assert_eq!(w.txn(|tx| q.pop(tx)), Some(v));
        }
        assert!(w.txn(|tx| q.is_empty(tx)));
    }

    #[test]
    fn wraparound_works() {
        let rt = rt();
        let q = TxQueue::create(&rt, 4);
        let mut w = rt.spawn_worker();
        for round in 0..10u64 {
            w.txn(|tx| q.push(tx, round));
            w.txn(|tx| q.push(tx, round + 100));
            assert_eq!(w.txn(|tx| q.pop(tx)), Some(round));
            assert_eq!(w.txn(|tx| q.pop(tx)), Some(round + 100));
        }
    }

    #[test]
    fn concurrent_producers_consumers_conserve_items() {
        let rt = rt();
        let q = TxQueue::create(&rt, 8);
        let produced: u64 = 4 * 100;
        let popped = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..2u64 {
                let rt = &rt;
                s.spawn(move || {
                    let mut w = rt.spawn_worker();
                    for i in 0..200u64 {
                        w.txn(|tx| q.push(tx, t * 1000 + i));
                    }
                });
            }
            for _ in 0..2 {
                let rt = &rt;
                let popped = &popped;
                s.spawn(move || {
                    let mut w = rt.spawn_worker();
                    let mut got = 0;
                    let mut dry = 0;
                    while dry < 200 {
                        match w.txn(|tx| q.pop(tx)) {
                            Some(_) => {
                                got += 1;
                                dry = 0;
                            }
                            None => {
                                dry += 1;
                                std::thread::yield_now();
                            }
                        }
                    }
                    popped.fetch_add(got, std::sync::atomic::Ordering::Relaxed);
                });
            }
        });
        let w = rt.spawn_worker();
        let remaining = q.seq_len(&w);
        assert_eq!(
            popped.load(std::sync::atomic::Ordering::Relaxed) + remaining,
            produced
        );
    }

    #[test]
    fn bulk_ops_match_per_item_semantics() {
        let rt = rt();
        let q = TxQueue::create(&rt, 8);
        let mut w = rt.spawn_worker();
        // Fill to wrap the ring, then bulk ops that straddle the seam.
        w.txn(|tx| q.push_many(tx, &[1, 2, 3, 4, 5]));
        let mut out = [0u64; 3];
        assert_eq!(w.txn(|tx| q.pop_many(tx, &mut out)), 3);
        assert_eq!(out, [1, 2, 3]);
        // head=3, tail=5: this push wraps past slot 7.
        w.txn(|tx| q.push_many(tx, &[6, 7, 8, 9]));
        let mut out = [0u64; 8];
        assert_eq!(w.txn(|tx| q.pop_many(tx, &mut out)), 6);
        assert_eq!(&out[..6], &[4, 5, 6, 7, 8, 9]);
        assert_eq!(w.txn(|tx| q.pop_many(tx, &mut out)), 0);
        // Overflowing bulk push grows via the per-item fallback.
        let big: Vec<u64> = (0..50).collect();
        w.txn(|tx| q.push_many(tx, &big));
        assert_eq!(q.seq_len(&w), 50);
        for v in 0..50u64 {
            assert_eq!(w.txn(|tx| q.pop(tx)), Some(v));
        }
    }

    #[test]
    fn seq_push_builds_work_queue() {
        let rt = rt();
        let q = TxQueue::create(&rt, 16);
        let w = rt.spawn_worker();
        for v in 0..10u64 {
            q.seq_push(&w, v);
        }
        assert_eq!(q.seq_len(&w), 10);
    }
}
