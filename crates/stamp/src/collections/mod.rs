//! Transactional data structures on the simulated heap — the port of
//! STAMP's `lib/` directory.
//!
//! Every structure stores its nodes in simulated memory (`txmem::Addr` plus
//! explicit field offsets, exactly like the C structs of STAMP) and routes
//! every access through the STM barriers with a static [`stm::Site`]
//! describing the access:
//!
//! * node *initialization* stores right after a transactional allocation are
//!   `Site::captured_local` — runtime capture analysis elides them, and the
//!   paper's compiler analysis proves them captured (allocation and access
//!   in the same function);
//! * *traversal* reads and *link-update* writes touch shared memory and are
//!   `Site::shared` (manually instrumented in the original STAMP —
//!   "required" in Figure 8's terms);
//! * the list iterator lives in a transaction-local *stack* frame (paper
//!   Figure 1(a)).

mod bitmap;
mod hashtable;
mod list;
mod pqueue;
mod queue;
mod rbtree;
mod vector;

pub use bitmap::TxBitmap;
pub use hashtable::TxHashtable;
pub use list::{ListIter, TxList};
pub use pqueue::TxHeapQueue;
pub use queue::TxQueue;
pub use rbtree::TxRbTree;
pub use vector::TxVector;
