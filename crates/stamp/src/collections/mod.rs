//! Transactional data structures on the simulated heap — the port of
//! STAMP's `lib/` directory.
//!
//! The list, red-black tree and queue are built on the **typed
//! transactional object layer** (`stm::tx_object!` layouts, `TxPtr` field
//! projections, `StackFrame` cursors) and are the reference users of that
//! API; the remaining structures still speak raw `txmem::Addr` plus
//! explicit word offsets, exactly like the C structs of STAMP — both
//! styles lower to the same word barriers. Every access carries a static
//! [`stm::Site`] describing it:
//!
//! * node *initialization* stores right after a transactional allocation are
//!   `Site::captured_local` — runtime capture analysis elides them, and the
//!   paper's compiler analysis proves them captured (allocation and access
//!   in the same function);
//! * *traversal* reads and *link-update* writes touch shared memory and are
//!   `Site::shared` (manually instrumented in the original STAMP —
//!   "required" in Figure 8's terms);
//! * the list iterator lives in a transaction-local *stack* frame (paper
//!   Figure 1(a)), guarded by an RAII `StackFrame`.

mod bitmap;
mod hashtable;
mod list;
mod pqueue;
mod queue;
mod rbtree;
mod vector;

pub use bitmap::TxBitmap;
pub use hashtable::TxHashtable;
pub use list::{Cursor, ListHdr, ListIter, Node, TxList};
pub use pqueue::TxHeapQueue;
pub use queue::{QueueHdr, TxQueue};
pub use rbtree::{Color, RbHdr, RbNode, TxRbTree};
pub use vector::TxVector;
