//! Transactional chained hash table (STAMP `lib/hashtable.c`): fixed bucket
//! array, per-bucket singly-linked chains, unique keys.

use stm::{Site, StmRuntime, Tx, TxResult, WorkerCtx};
use txmem::Addr;

// Chain node: [next, key, val]
const NEXT: u64 = 0;
const KEY: u64 = 1;
const VAL: u64 = 2;
const NODE_WORDS: u64 = 3;

// Handle: [nbuckets, size, bucket_0, ..., bucket_{n-1}]
const NBUCKETS: u64 = 0;
const SIZE: u64 = 1;
const BUCKET0: u64 = 2;

static S_BUCKET_R: Site = Site::shared("hashtable.bucket.read");
static S_BUCKET_W: Site = Site::shared("hashtable.bucket.write");
static S_NODE_R: Site = Site::shared("hashtable.node.read");
static S_LINK_W: Site = Site::shared("hashtable.link.write");
static S_SIZE_R: Site = Site::shared("hashtable.size.read");
static S_SIZE_W: Site = Site::shared("hashtable.size.write");
static S_INIT_W: Site = Site::captured_local("hashtable.node_init.write");

#[derive(Clone, Copy, Debug)]
pub struct TxHashtable {
    pub handle: Addr,
}

#[inline]
fn mix(key: u64) -> u64 {
    let mut h = key.wrapping_mul(0x9E3779B97F4A7C15);
    h ^= h >> 29;
    h
}

impl TxHashtable {
    /// Create with `nbuckets` chains (setup phase).
    pub fn create(rt: &StmRuntime, nbuckets: u64) -> TxHashtable {
        assert!(nbuckets > 0);
        let handle = rt.alloc_global((BUCKET0 + nbuckets) * 8);
        rt.mem().store(handle.word(NBUCKETS), nbuckets);
        rt.mem().store(handle.word(SIZE), 0);
        for b in 0..nbuckets {
            rt.mem().store(handle.word(BUCKET0 + b), 0);
        }
        TxHashtable { handle }
    }

    fn bucket_slot(&self, tx: &mut Tx<'_, '_>, key: u64) -> TxResult<Addr> {
        // The bucket count is immutable after setup; original STAMP reads it
        // without instrumentation (read-only data, paper §2.2.3), so the
        // site is "unneeded" — a naive compiler still adds the barrier.
        static S_NB: Site = Site::unneeded("hashtable.nbuckets.read");
        let n = tx.read(&S_NB, self.handle.word(NBUCKETS))?;
        Ok(self.handle.word(BUCKET0 + mix(key) % n))
    }

    /// Insert `(key, val)`; `false` if the key already exists.
    pub fn insert(&self, tx: &mut Tx<'_, '_>, key: u64, val: u64) -> TxResult<bool> {
        let slot = self.bucket_slot(tx, key)?;
        let head = tx.read_addr(&S_BUCKET_R, slot)?;
        let mut cur = head;
        while !cur.is_null() {
            if tx.read(&S_NODE_R, cur.word(KEY))? == key {
                return Ok(false);
            }
            cur = tx.read_addr(&S_NODE_R, cur.word(NEXT))?;
        }
        let node = tx.alloc(NODE_WORDS * 8)?;
        // One ranged write initializes the whole (captured) node.
        tx.write_range(&S_INIT_W, node.word(NEXT), &[head.raw(), key, val])?;
        tx.write_addr(&S_BUCKET_W, slot, node)?;
        let sz = tx.read(&S_SIZE_R, self.handle.word(SIZE))?;
        tx.write(&S_SIZE_W, self.handle.word(SIZE), sz + 1)?;
        Ok(true)
    }

    pub fn find(&self, tx: &mut Tx<'_, '_>, key: u64) -> TxResult<Option<u64>> {
        let slot = self.bucket_slot(tx, key)?;
        let mut cur = tx.read_addr(&S_BUCKET_R, slot)?;
        while !cur.is_null() {
            if tx.read(&S_NODE_R, cur.word(KEY))? == key {
                return Ok(Some(tx.read(&S_NODE_R, cur.word(VAL))?));
            }
            cur = tx.read_addr(&S_NODE_R, cur.word(NEXT))?;
        }
        Ok(None)
    }

    /// Overwrite an existing key's value; `false` if absent.
    pub fn update(&self, tx: &mut Tx<'_, '_>, key: u64, val: u64) -> TxResult<bool> {
        let slot = self.bucket_slot(tx, key)?;
        let mut cur = tx.read_addr(&S_BUCKET_R, slot)?;
        while !cur.is_null() {
            if tx.read(&S_NODE_R, cur.word(KEY))? == key {
                tx.write(&S_LINK_W, cur.word(VAL), val)?;
                return Ok(true);
            }
            cur = tx.read_addr(&S_NODE_R, cur.word(NEXT))?;
        }
        Ok(false)
    }

    pub fn remove(&self, tx: &mut Tx<'_, '_>, key: u64) -> TxResult<Option<u64>> {
        let slot = self.bucket_slot(tx, key)?;
        let mut prev_next = slot;
        let mut cur = tx.read_addr(&S_BUCKET_R, slot)?;
        while !cur.is_null() {
            if tx.read(&S_NODE_R, cur.word(KEY))? == key {
                let val = tx.read(&S_NODE_R, cur.word(VAL))?;
                let next = tx.read_addr(&S_NODE_R, cur.word(NEXT))?;
                tx.write_addr(&S_LINK_W, prev_next, next)?;
                let sz = tx.read(&S_SIZE_R, self.handle.word(SIZE))?;
                tx.write(&S_SIZE_W, self.handle.word(SIZE), sz - 1)?;
                tx.free(cur);
                return Ok(Some(val));
            }
            prev_next = cur.word(NEXT);
            cur = tx.read_addr(&S_NODE_R, prev_next)?;
        }
        Ok(None)
    }

    pub fn len(&self, tx: &mut Tx<'_, '_>) -> TxResult<u64> {
        tx.read(&S_SIZE_R, self.handle.word(SIZE))
    }

    pub fn seq_len(&self, w: &WorkerCtx<'_>) -> u64 {
        w.load(self.handle.word(SIZE))
    }

    /// All `(key, val)` pairs in bucket order; verification only.
    pub fn seq_collect(&self, w: &WorkerCtx<'_>) -> Vec<(u64, u64)> {
        let n = w.load(self.handle.word(NBUCKETS));
        let mut out = Vec::new();
        for b in 0..n {
            let mut cur = w.load_addr(self.handle.word(BUCKET0 + b));
            while !cur.is_null() {
                out.push((w.load(cur.word(KEY)), w.load(cur.word(VAL))));
                cur = w.load_addr(cur.word(NEXT));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm::{StmRuntime, TxConfig};
    use txmem::MemConfig;

    fn rt() -> StmRuntime {
        StmRuntime::new(MemConfig::small(), TxConfig::runtime_tree_full())
    }

    #[test]
    fn insert_find_update_remove() {
        let rt = rt();
        let h = TxHashtable::create(&rt, 8);
        let mut w = rt.spawn_worker();
        for k in 0..50u64 {
            assert!(w.txn(|tx| h.insert(tx, k, k * 3)));
        }
        assert!(!w.txn(|tx| h.insert(tx, 25, 0)));
        assert_eq!(w.txn(|tx| h.find(tx, 25)), Some(75));
        assert_eq!(w.txn(|tx| h.find(tx, 50)), None);
        assert!(w.txn(|tx| h.update(tx, 25, 1)));
        assert_eq!(w.txn(|tx| h.find(tx, 25)), Some(1));
        assert_eq!(w.txn(|tx| h.remove(tx, 25)), Some(1));
        assert_eq!(w.txn(|tx| h.remove(tx, 25)), None);
        assert_eq!(h.seq_len(&w), 49);
        let mut all = h.seq_collect(&w);
        all.sort();
        assert_eq!(all.len(), 49);
        assert!(!all.iter().any(|&(k, _)| k == 25));
    }

    #[test]
    fn collisions_chain_correctly() {
        let rt = rt();
        let h = TxHashtable::create(&rt, 1); // everything collides
        let mut w = rt.spawn_worker();
        for k in 0..20u64 {
            assert!(w.txn(|tx| h.insert(tx, k, k)));
        }
        for k in 0..20u64 {
            assert_eq!(w.txn(|tx| h.find(tx, k)), Some(k));
        }
        assert_eq!(w.txn(|tx| h.remove(tx, 10)), Some(10));
        assert_eq!(w.txn(|tx| h.find(tx, 10)), None);
        assert_eq!(w.txn(|tx| h.find(tx, 11)), Some(11));
    }

    #[test]
    fn concurrent_dedup_counts_once() {
        // Many threads inserting from a small key pool: the table must end
        // up with exactly the distinct keys (genome's phase-1 pattern).
        let rt = rt();
        let h = TxHashtable::create(&rt, 16);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let rt = &rt;
                s.spawn(move || {
                    let mut w = rt.spawn_worker();
                    let mut rng = crate::rng::SplitMix64::new(t);
                    for _ in 0..300 {
                        let k = rng.below(64);
                        w.txn(|tx| h.insert(tx, k, k));
                    }
                });
            }
        });
        let w = rt.spawn_worker();
        let mut all = h.seq_collect(&w);
        all.sort();
        all.dedup();
        assert_eq!(all.len() as u64, h.seq_len(&w));
        assert!(h.seq_len(&w) <= 64);
    }
}
