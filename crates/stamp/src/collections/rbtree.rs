//! Transactional red-black tree (STAMP `lib/rbtree.c`, used by vacation's
//! relation tables), mapping `u64` keys to one value word.
//!
//! Built on the typed transactional object layer: [`RbNode`] declares the
//! six-word layout once, links are `TxPtr<RbNode>` fields (so left/right
//! selection is a choice between two typed projections, not two magic
//! integers), and the color is a real enum behind the `TxWord` codec.
//! `TxPtr::NULL` doubles as the black nil sentinel (CLRS-style, with
//! explicit parent tracking through deletion fix-up).

use stm::{
    tx_object, tx_word_enum, Field, Site, StmRuntime, Tx, TxObject, TxPtr, TxResult, WorkerCtx,
};
use txmem::Addr;

tx_word_enum! {
    /// Node color. The nil sentinel reads as [`Color::Black`].
    pub enum Color {
        /// Black node (also nil's color).
        Black = 0,
        /// Red node.
        Red = 1,
    }
}

tx_object! {
    /// A red-black tree node.
    pub struct RbNode {
        /// The key.
        pub key: u64,
        /// The value word.
        pub val: u64,
        /// Parent link (null at the root).
        pub parent: TxPtr<RbNode>,
        /// Left child.
        pub left: TxPtr<RbNode>,
        /// Right child.
        pub right: TxPtr<RbNode>,
        /// Node color.
        pub color: Color,
    }
}

tx_object! {
    /// The tree header (what [`TxRbTree::handle`] points at).
    pub struct RbHdr {
        /// Root node (null when empty).
        pub root: TxPtr<RbNode>,
        /// Number of nodes.
        pub size: u64,
    }
}

/// A child-link projection — both candidates of every "go left or right"
/// decision in the CLRS algorithms.
type Link = Field<RbNode, TxPtr<RbNode>>;

static S_NODE_R: Site = Site::shared("rbtree.node.read");
static S_NODE_W: Site = Site::shared("rbtree.node.write");
static S_ROOT_R: Site = Site::shared("rbtree.root.read");
static S_ROOT_W: Site = Site::shared("rbtree.root.write");
static S_SIZE_R: Site = Site::shared("rbtree.size.read");
static S_SIZE_W: Site = Site::shared("rbtree.size.write");
static S_INIT_W: Site = Site::captured_local("rbtree.node_init.write");

/// A transactional red-black tree handle.
#[derive(Clone, Copy, Debug)]
pub struct TxRbTree {
    /// Address of the [`RbHdr`] (raw so workloads can stash tree handles
    /// in plain memory words).
    pub handle: Addr,
}

impl TxRbTree {
    /// The typed view of the header.
    #[inline]
    fn hdr(&self) -> TxPtr<RbHdr> {
        TxPtr::from_addr(self.handle)
    }

    /// Create a tree during (non-transactional) setup.
    pub fn create(rt: &StmRuntime) -> TxRbTree {
        let handle = rt.alloc_global(RbHdr::BYTES);
        let h = TxPtr::<RbHdr>::from_addr(handle);
        rt.mem().store(h.field(RbHdr::root), 0);
        rt.mem().store(h.field(RbHdr::size), 0);
        TxRbTree { handle }
    }

    // -- tiny field accessors (every one an instrumented site) -------------

    fn root(&self, tx: &mut Tx<'_, '_>) -> TxResult<TxPtr<RbNode>> {
        tx.read_field(&S_ROOT_R, self.hdr(), RbHdr::root)
    }

    fn set_root(&self, tx: &mut Tx<'_, '_>, n: TxPtr<RbNode>) -> TxResult<()> {
        tx.write_field(&S_ROOT_W, self.hdr(), RbHdr::root, n)
    }

    fn f(tx: &mut Tx<'_, '_>, n: TxPtr<RbNode>, link: Link) -> TxResult<TxPtr<RbNode>> {
        tx.read_field(&S_NODE_R, n, link)
    }

    fn set_f(tx: &mut Tx<'_, '_>, n: TxPtr<RbNode>, link: Link, v: TxPtr<RbNode>) -> TxResult<()> {
        tx.write_field(&S_NODE_W, n, link, v)
    }

    fn color(tx: &mut Tx<'_, '_>, n: TxPtr<RbNode>) -> TxResult<Color> {
        if n.is_null() {
            Ok(Color::Black) // nil is black
        } else {
            tx.read_field(&S_NODE_R, n, RbNode::color)
        }
    }

    fn set_color(tx: &mut Tx<'_, '_>, n: TxPtr<RbNode>, c: Color) -> TxResult<()> {
        debug_assert!(!n.is_null());
        tx.write_field(&S_NODE_W, n, RbNode::color, c)
    }

    fn bump_size(&self, tx: &mut Tx<'_, '_>, delta: i64) -> TxResult<()> {
        let sz = tx.read_field(&S_SIZE_R, self.hdr(), RbHdr::size)?;
        tx.write_field(
            &S_SIZE_W,
            self.hdr(),
            RbHdr::size,
            sz.wrapping_add(delta as u64),
        )
    }

    // -- rotations ----------------------------------------------------------

    fn rotate_left(&self, tx: &mut Tx<'_, '_>, x: TxPtr<RbNode>) -> TxResult<()> {
        let y = Self::f(tx, x, RbNode::right)?;
        let yl = Self::f(tx, y, RbNode::left)?;
        Self::set_f(tx, x, RbNode::right, yl)?;
        if !yl.is_null() {
            Self::set_f(tx, yl, RbNode::parent, x)?;
        }
        let xp = Self::f(tx, x, RbNode::parent)?;
        Self::set_f(tx, y, RbNode::parent, xp)?;
        if xp.is_null() {
            self.set_root(tx, y)?;
        } else if Self::f(tx, xp, RbNode::left)? == x {
            Self::set_f(tx, xp, RbNode::left, y)?;
        } else {
            Self::set_f(tx, xp, RbNode::right, y)?;
        }
        Self::set_f(tx, y, RbNode::left, x)?;
        Self::set_f(tx, x, RbNode::parent, y)
    }

    fn rotate_right(&self, tx: &mut Tx<'_, '_>, x: TxPtr<RbNode>) -> TxResult<()> {
        let y = Self::f(tx, x, RbNode::left)?;
        let yr = Self::f(tx, y, RbNode::right)?;
        Self::set_f(tx, x, RbNode::left, yr)?;
        if !yr.is_null() {
            Self::set_f(tx, yr, RbNode::parent, x)?;
        }
        let xp = Self::f(tx, x, RbNode::parent)?;
        Self::set_f(tx, y, RbNode::parent, xp)?;
        if xp.is_null() {
            self.set_root(tx, y)?;
        } else if Self::f(tx, xp, RbNode::right)? == x {
            Self::set_f(tx, xp, RbNode::right, y)?;
        } else {
            Self::set_f(tx, xp, RbNode::left, y)?;
        }
        Self::set_f(tx, y, RbNode::right, x)?;
        Self::set_f(tx, x, RbNode::parent, y)
    }

    // -- lookup -------------------------------------------------------------

    fn find_node(&self, tx: &mut Tx<'_, '_>, key: u64) -> TxResult<TxPtr<RbNode>> {
        let mut cur = self.root(tx)?;
        while !cur.is_null() {
            let k = tx.read_field(&S_NODE_R, cur, RbNode::key)?;
            if key == k {
                return Ok(cur);
            }
            cur = Self::f(tx, cur, if key < k { RbNode::left } else { RbNode::right })?;
        }
        Ok(TxPtr::NULL)
    }

    /// Look up `key`, returning its value word.
    pub fn find(&self, tx: &mut Tx<'_, '_>, key: u64) -> TxResult<Option<u64>> {
        let n = self.find_node(tx, key)?;
        if n.is_null() {
            Ok(None)
        } else {
            Ok(Some(tx.read_field(&S_NODE_R, n, RbNode::val)?))
        }
    }

    /// Overwrite the value of an existing key; `false` if absent.
    pub fn update(&self, tx: &mut Tx<'_, '_>, key: u64, val: u64) -> TxResult<bool> {
        let n = self.find_node(tx, key)?;
        if n.is_null() {
            Ok(false)
        } else {
            tx.write_field(&S_NODE_W, n, RbNode::val, val)?;
            Ok(true)
        }
    }

    /// Smallest key `>= key` (range scans in vacation's update task).
    pub fn find_at_least(&self, tx: &mut Tx<'_, '_>, key: u64) -> TxResult<Option<(u64, u64)>> {
        let mut cur = self.root(tx)?;
        let mut best = TxPtr::NULL;
        while !cur.is_null() {
            let k = tx.read_field(&S_NODE_R, cur, RbNode::key)?;
            if k == key {
                best = cur;
                break;
            }
            if k > key {
                best = cur;
                cur = Self::f(tx, cur, RbNode::left)?;
            } else {
                cur = Self::f(tx, cur, RbNode::right)?;
            }
        }
        if best.is_null() {
            Ok(None)
        } else {
            Ok(Some((
                tx.read_field(&S_NODE_R, best, RbNode::key)?,
                tx.read_field(&S_NODE_R, best, RbNode::val)?,
            )))
        }
    }

    // -- insertion ----------------------------------------------------------

    /// Insert `(key, val)`; `false` if the key exists.
    pub fn insert(&self, tx: &mut Tx<'_, '_>, key: u64, val: u64) -> TxResult<bool> {
        let mut parent = TxPtr::NULL;
        let mut cur = self.root(tx)?;
        let mut went_left = false;
        while !cur.is_null() {
            let k = tx.read_field(&S_NODE_R, cur, RbNode::key)?;
            if k == key {
                return Ok(false);
            }
            parent = cur;
            went_left = key < k;
            cur = Self::f(
                tx,
                cur,
                if went_left {
                    RbNode::left
                } else {
                    RbNode::right
                },
            )?;
        }
        let z = tx.alloc_obj::<RbNode>()?;
        tx.write_field(&S_INIT_W, z, RbNode::key, key)?;
        tx.write_field(&S_INIT_W, z, RbNode::val, val)?;
        tx.write_field(&S_INIT_W, z, RbNode::parent, parent)?;
        tx.write_field(&S_INIT_W, z, RbNode::left, TxPtr::NULL)?;
        tx.write_field(&S_INIT_W, z, RbNode::right, TxPtr::NULL)?;
        tx.write_field(&S_INIT_W, z, RbNode::color, Color::Red)?;
        if parent.is_null() {
            self.set_root(tx, z)?;
        } else if went_left {
            Self::set_f(tx, parent, RbNode::left, z)?;
        } else {
            Self::set_f(tx, parent, RbNode::right, z)?;
        }
        self.insert_fixup(tx, z)?;
        self.bump_size(tx, 1)?;
        Ok(true)
    }

    fn insert_fixup(&self, tx: &mut Tx<'_, '_>, mut z: TxPtr<RbNode>) -> TxResult<()> {
        loop {
            let zp = Self::f(tx, z, RbNode::parent)?;
            if zp.is_null() || Self::color(tx, zp)? == Color::Black {
                break;
            }
            // Grandparent exists: zp is red, the root is black.
            let zpp = Self::f(tx, zp, RbNode::parent)?;
            if Self::f(tx, zpp, RbNode::left)? == zp {
                let uncle = Self::f(tx, zpp, RbNode::right)?;
                if Self::color(tx, uncle)? == Color::Red {
                    Self::set_color(tx, zp, Color::Black)?;
                    Self::set_color(tx, uncle, Color::Black)?;
                    Self::set_color(tx, zpp, Color::Red)?;
                    z = zpp;
                } else {
                    if Self::f(tx, zp, RbNode::right)? == z {
                        z = zp;
                        self.rotate_left(tx, z)?;
                    }
                    let zp = Self::f(tx, z, RbNode::parent)?;
                    let zpp = Self::f(tx, zp, RbNode::parent)?;
                    Self::set_color(tx, zp, Color::Black)?;
                    Self::set_color(tx, zpp, Color::Red)?;
                    self.rotate_right(tx, zpp)?;
                }
            } else {
                let uncle = Self::f(tx, zpp, RbNode::left)?;
                if Self::color(tx, uncle)? == Color::Red {
                    Self::set_color(tx, zp, Color::Black)?;
                    Self::set_color(tx, uncle, Color::Black)?;
                    Self::set_color(tx, zpp, Color::Red)?;
                    z = zpp;
                } else {
                    if Self::f(tx, zp, RbNode::left)? == z {
                        z = zp;
                        self.rotate_right(tx, z)?;
                    }
                    let zp = Self::f(tx, z, RbNode::parent)?;
                    let zpp = Self::f(tx, zp, RbNode::parent)?;
                    Self::set_color(tx, zp, Color::Black)?;
                    Self::set_color(tx, zpp, Color::Red)?;
                    self.rotate_left(tx, zpp)?;
                }
            }
        }
        let root = self.root(tx)?;
        Self::set_color(tx, root, Color::Black)
    }

    // -- deletion -----------------------------------------------------------

    /// Replace subtree `u` with `v` (CLRS transplant).
    fn transplant(&self, tx: &mut Tx<'_, '_>, u: TxPtr<RbNode>, v: TxPtr<RbNode>) -> TxResult<()> {
        let up = Self::f(tx, u, RbNode::parent)?;
        if up.is_null() {
            self.set_root(tx, v)?;
        } else if Self::f(tx, up, RbNode::left)? == u {
            Self::set_f(tx, up, RbNode::left, v)?;
        } else {
            Self::set_f(tx, up, RbNode::right, v)?;
        }
        if !v.is_null() {
            Self::set_f(tx, v, RbNode::parent, up)?;
        }
        Ok(())
    }

    fn minimum(tx: &mut Tx<'_, '_>, mut n: TxPtr<RbNode>) -> TxResult<TxPtr<RbNode>> {
        loop {
            let l = Self::f(tx, n, RbNode::left)?;
            if l.is_null() {
                return Ok(n);
            }
            n = l;
        }
    }

    /// Remove `key`, returning its value. Frees the node transactionally.
    pub fn remove(&self, tx: &mut Tx<'_, '_>, key: u64) -> TxResult<Option<u64>> {
        let z = self.find_node(tx, key)?;
        if z.is_null() {
            return Ok(None);
        }
        let val = tx.read_field(&S_NODE_R, z, RbNode::val)?;
        let zl = Self::f(tx, z, RbNode::left)?;
        let zr = Self::f(tx, z, RbNode::right)?;
        let mut y_color = Self::color(tx, z)?;
        let x;
        let xp;
        if zl.is_null() {
            x = zr;
            xp = Self::f(tx, z, RbNode::parent)?;
            self.transplant(tx, z, zr)?;
        } else if zr.is_null() {
            x = zl;
            xp = Self::f(tx, z, RbNode::parent)?;
            self.transplant(tx, z, zl)?;
        } else {
            let y = Self::minimum(tx, zr)?;
            y_color = Self::color(tx, y)?;
            x = Self::f(tx, y, RbNode::right)?;
            if Self::f(tx, y, RbNode::parent)? == z {
                xp = y;
                if !x.is_null() {
                    Self::set_f(tx, x, RbNode::parent, y)?;
                }
            } else {
                xp = Self::f(tx, y, RbNode::parent)?;
                self.transplant(tx, y, x)?;
                let zr = Self::f(tx, z, RbNode::right)?;
                Self::set_f(tx, y, RbNode::right, zr)?;
                Self::set_f(tx, zr, RbNode::parent, y)?;
            }
            self.transplant(tx, z, y)?;
            let zl = Self::f(tx, z, RbNode::left)?;
            Self::set_f(tx, y, RbNode::left, zl)?;
            Self::set_f(tx, zl, RbNode::parent, y)?;
            let zc = Self::color(tx, z)?;
            Self::set_color(tx, y, zc)?;
        }
        if y_color == Color::Black {
            self.delete_fixup(tx, x, xp)?;
        }
        tx.free_obj(z);
        self.bump_size(tx, -1)?;
        Ok(Some(val))
    }

    /// CLRS delete fix-up with `x` possibly nil; `xp` tracks its parent.
    fn delete_fixup(
        &self,
        tx: &mut Tx<'_, '_>,
        mut x: TxPtr<RbNode>,
        mut xp: TxPtr<RbNode>,
    ) -> TxResult<()> {
        loop {
            let root = self.root(tx)?;
            if x == root || Self::color(tx, x)? == Color::Red {
                break;
            }
            if Self::f(tx, xp, RbNode::left)? == x {
                let mut w = Self::f(tx, xp, RbNode::right)?;
                if Self::color(tx, w)? == Color::Red {
                    Self::set_color(tx, w, Color::Black)?;
                    Self::set_color(tx, xp, Color::Red)?;
                    self.rotate_left(tx, xp)?;
                    w = Self::f(tx, xp, RbNode::right)?;
                }
                let wl = Self::f(tx, w, RbNode::left)?;
                let wr = Self::f(tx, w, RbNode::right)?;
                if Self::color(tx, wl)? == Color::Black && Self::color(tx, wr)? == Color::Black {
                    Self::set_color(tx, w, Color::Red)?;
                    x = xp;
                    xp = Self::f(tx, x, RbNode::parent)?;
                } else {
                    if Self::color(tx, wr)? == Color::Black {
                        if !wl.is_null() {
                            Self::set_color(tx, wl, Color::Black)?;
                        }
                        Self::set_color(tx, w, Color::Red)?;
                        self.rotate_right(tx, w)?;
                        w = Self::f(tx, xp, RbNode::right)?;
                    }
                    let xpc = Self::color(tx, xp)?;
                    Self::set_color(tx, w, xpc)?;
                    Self::set_color(tx, xp, Color::Black)?;
                    let wr = Self::f(tx, w, RbNode::right)?;
                    if !wr.is_null() {
                        Self::set_color(tx, wr, Color::Black)?;
                    }
                    self.rotate_left(tx, xp)?;
                    x = self.root(tx)?;
                    xp = TxPtr::NULL;
                }
            } else {
                let mut w = Self::f(tx, xp, RbNode::left)?;
                if Self::color(tx, w)? == Color::Red {
                    Self::set_color(tx, w, Color::Black)?;
                    Self::set_color(tx, xp, Color::Red)?;
                    self.rotate_right(tx, xp)?;
                    w = Self::f(tx, xp, RbNode::left)?;
                }
                let wl = Self::f(tx, w, RbNode::left)?;
                let wr = Self::f(tx, w, RbNode::right)?;
                if Self::color(tx, wl)? == Color::Black && Self::color(tx, wr)? == Color::Black {
                    Self::set_color(tx, w, Color::Red)?;
                    x = xp;
                    xp = Self::f(tx, x, RbNode::parent)?;
                } else {
                    if Self::color(tx, wl)? == Color::Black {
                        if !wr.is_null() {
                            Self::set_color(tx, wr, Color::Black)?;
                        }
                        Self::set_color(tx, w, Color::Red)?;
                        self.rotate_left(tx, w)?;
                        w = Self::f(tx, xp, RbNode::left)?;
                    }
                    let xpc = Self::color(tx, xp)?;
                    Self::set_color(tx, w, xpc)?;
                    Self::set_color(tx, xp, Color::Black)?;
                    let wl = Self::f(tx, w, RbNode::left)?;
                    if !wl.is_null() {
                        Self::set_color(tx, wl, Color::Black)?;
                    }
                    self.rotate_right(tx, xp)?;
                    x = self.root(tx)?;
                    xp = TxPtr::NULL;
                }
            }
        }
        if !x.is_null() {
            Self::set_color(tx, x, Color::Black)?;
        }
        Ok(())
    }

    /// Transactional size.
    pub fn len(&self, tx: &mut Tx<'_, '_>) -> TxResult<u64> {
        tx.read_field(&S_SIZE_R, self.hdr(), RbHdr::size)
    }

    // --- sequential helpers (setup / verification) -------------------------

    /// Non-transactional size (setup/verification only).
    pub fn seq_len(&self, w: &WorkerCtx<'_>) -> u64 {
        w.load_as(self.hdr().field(RbHdr::size))
    }

    /// In-order `(key, val)` pairs; verification only.
    pub fn seq_collect(&self, w: &WorkerCtx<'_>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut stack = Vec::new();
        let mut cur: TxPtr<RbNode> = w.load_as(self.hdr().field(RbHdr::root));
        while !cur.is_null() || !stack.is_empty() {
            while !cur.is_null() {
                stack.push(cur);
                cur = w.load_as(cur.field(RbNode::left));
            }
            let n = stack.pop().unwrap();
            out.push((
                w.load_as(n.field(RbNode::key)),
                w.load_as(n.field(RbNode::val)),
            ));
            cur = w.load_as(n.field(RbNode::right));
        }
        out
    }

    /// Check the red-black invariants sequentially; panics with a message
    /// on violation, returns black-height on success.
    pub fn seq_check_invariants(&self, w: &WorkerCtx<'_>) -> usize {
        fn check(w: &WorkerCtx<'_>, n: TxPtr<RbNode>, lo: Option<u64>, hi: Option<u64>) -> usize {
            if n.is_null() {
                return 1; // nil is black
            }
            let k: u64 = w.load_as(n.field(RbNode::key));
            if let Some(lo) = lo {
                assert!(k > lo, "BST order violated at key {k}");
            }
            if let Some(hi) = hi {
                assert!(k < hi, "BST order violated at key {k}");
            }
            let c: Color = w.load_as(n.field(RbNode::color));
            let l: TxPtr<RbNode> = w.load_as(n.field(RbNode::left));
            let r: TxPtr<RbNode> = w.load_as(n.field(RbNode::right));
            if c == Color::Red {
                for child in [l, r] {
                    if !child.is_null() {
                        assert_eq!(
                            w.load_as::<Color>(child.field(RbNode::color)),
                            Color::Black,
                            "red node {k} has red child"
                        );
                    }
                }
            }
            for child in [l, r] {
                if !child.is_null() {
                    assert_eq!(
                        w.load_as::<TxPtr<RbNode>>(child.field(RbNode::parent)),
                        n,
                        "parent pointer broken under {k}"
                    );
                }
            }
            let bl = check(w, l, lo, Some(k));
            let br = check(w, r, Some(k), hi);
            assert_eq!(bl, br, "black-height mismatch at key {k}");
            bl + if c == Color::Black { 1 } else { 0 }
        }
        let root: TxPtr<RbNode> = w.load_as(self.hdr().field(RbHdr::root));
        if !root.is_null() {
            assert_eq!(
                w.load_as::<Color>(root.field(RbNode::color)),
                Color::Black,
                "root must be black"
            );
        }
        check(w, root, None, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use stm::{StmRuntime, TxConfig};
    use txmem::MemConfig;

    fn rt() -> StmRuntime {
        StmRuntime::new(MemConfig::small(), TxConfig::runtime_tree_full())
    }

    #[test]
    fn insert_find_update() {
        let rt = rt();
        let t = TxRbTree::create(&rt);
        let mut w = rt.spawn_worker();
        for k in [50u64, 20, 80, 10, 30, 70, 90] {
            assert!(w.txn(|tx| t.insert(tx, k, k + 1)));
        }
        assert!(!w.txn(|tx| t.insert(tx, 50, 0)));
        assert_eq!(w.txn(|tx| t.find(tx, 30)), Some(31));
        assert_eq!(w.txn(|tx| t.find(tx, 31)), None);
        assert!(w.txn(|tx| t.update(tx, 30, 99)));
        assert_eq!(w.txn(|tx| t.find(tx, 30)), Some(99));
        assert!(!w.txn(|tx| t.update(tx, 31, 0)));
        t.seq_check_invariants(&w);
        assert_eq!(t.seq_len(&w), 7);
    }

    #[test]
    fn find_at_least_scans_upward() {
        let rt = rt();
        let t = TxRbTree::create(&rt);
        let mut w = rt.spawn_worker();
        for k in [10u64, 20, 30] {
            w.txn(|tx| t.insert(tx, k, k));
        }
        assert_eq!(w.txn(|tx| t.find_at_least(tx, 15)), Some((20, 20)));
        assert_eq!(w.txn(|tx| t.find_at_least(tx, 20)), Some((20, 20)));
        assert_eq!(w.txn(|tx| t.find_at_least(tx, 31)), None);
        assert_eq!(w.txn(|tx| t.find_at_least(tx, 0)), Some((10, 10)));
    }

    #[test]
    fn randomized_against_model() {
        let rt = StmRuntime::new(
            MemConfig {
                max_threads: 4,
                stack_words: 1 << 10,
                heap_words: 1 << 18,
            },
            TxConfig::runtime_tree_full(),
        );
        let t = TxRbTree::create(&rt);
        let mut w = rt.spawn_worker();
        let mut model = std::collections::BTreeMap::new();
        let mut rng = SplitMix64::new(2024);
        for step in 0..3000 {
            let key = rng.below(200);
            match rng.below(3) {
                0 => {
                    let inserted = w.txn(|tx| t.insert(tx, key, key * 2));
                    assert_eq!(
                        inserted,
                        model.insert(key, key * 2).is_none(),
                        "step {step}"
                    );
                }
                1 => {
                    let removed = w.txn(|tx| t.remove(tx, key));
                    assert_eq!(removed, model.remove(&key), "step {step}");
                }
                _ => {
                    let found = w.txn(|tx| t.find(tx, key));
                    assert_eq!(found, model.get(&key).copied(), "step {step}");
                }
            }
            if step % 256 == 0 {
                t.seq_check_invariants(&w);
            }
        }
        t.seq_check_invariants(&w);
        let collected = t.seq_collect(&w);
        let expect: Vec<_> = model.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(collected, expect);
        assert_eq!(t.seq_len(&w), model.len() as u64);
    }

    #[test]
    fn remove_all_leaves_empty_tree() {
        let rt = rt();
        let t = TxRbTree::create(&rt);
        let mut w = rt.spawn_worker();
        for k in 0..64u64 {
            w.txn(|tx| t.insert(tx, k, k));
        }
        for k in (0..64u64).rev() {
            assert_eq!(w.txn(|tx| t.remove(tx, k)), Some(k));
            t.seq_check_invariants(&w);
        }
        assert_eq!(t.seq_len(&w), 0);
        assert!(t.seq_collect(&w).is_empty());
    }

    #[test]
    fn concurrent_disjoint_inserts_keep_invariants() {
        let rt = StmRuntime::new(MemConfig::small(), TxConfig::runtime_tree_full());
        let t = TxRbTree::create(&rt);
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let rt = &rt;
                s.spawn(move || {
                    let mut w = rt.spawn_worker();
                    for i in 0..64u64 {
                        w.txn(|tx| t.insert(tx, tid + i * 4, 0));
                    }
                });
            }
        });
        let w = rt.spawn_worker();
        assert_eq!(t.seq_len(&w), 256);
        t.seq_check_invariants(&w);
    }

    #[test]
    fn aborted_insert_leaves_no_trace() {
        let rt = rt();
        let t = TxRbTree::create(&rt);
        let mut w = rt.spawn_worker();
        w.txn(|tx| t.insert(tx, 5, 5));
        let r: Result<(), u64> = w.txn_result(|tx| {
            t.insert(tx, 6, 6)?;
            t.remove(tx, 5)?;
            Err(stm::Abort::User(0))
        });
        assert!(r.is_err());
        assert_eq!(t.seq_collect(&w), vec![(5, 5)]);
        t.seq_check_invariants(&w);
    }
}
