//! Transactional red-black tree (STAMP `lib/rbtree.c`, used by vacation's
//! relation tables), mapping `u64` keys to one value word.
//!
//! Node layout (6 words): `[key, val, parent, left, right, color]`.
//! `NULL` doubles as the black nil sentinel (CLRS-style, with explicit
//! parent tracking through deletion fix-up).

use stm::{Site, StmRuntime, Tx, TxResult, WorkerCtx};
use txmem::{Addr, NULL};

const KEY: u64 = 0;
const VAL: u64 = 1;
const PARENT: u64 = 2;
const LEFT: u64 = 3;
const RIGHT: u64 = 4;
const COLOR: u64 = 5;
const NODE_WORDS: u64 = 6;

const RED: u64 = 1;
const BLACK: u64 = 0;

// Handle: [root, size]
const ROOT: u64 = 0;
const SIZE: u64 = 1;

static S_NODE_R: Site = Site::shared("rbtree.node.read");
static S_NODE_W: Site = Site::shared("rbtree.node.write");
static S_ROOT_R: Site = Site::shared("rbtree.root.read");
static S_ROOT_W: Site = Site::shared("rbtree.root.write");
static S_SIZE_R: Site = Site::shared("rbtree.size.read");
static S_SIZE_W: Site = Site::shared("rbtree.size.write");
static S_INIT_W: Site = Site::captured_local("rbtree.node_init.write");

/// A transactional red-black tree handle.
#[derive(Clone, Copy, Debug)]
pub struct TxRbTree {
    pub handle: Addr,
}

impl TxRbTree {
    pub fn create(rt: &StmRuntime) -> TxRbTree {
        let handle = rt.alloc_global(2 * 8);
        rt.mem().store(handle.word(ROOT), 0);
        rt.mem().store(handle.word(SIZE), 0);
        TxRbTree { handle }
    }

    // -- tiny field accessors (every one an instrumented site) -------------

    fn root(&self, tx: &mut Tx<'_, '_>) -> TxResult<Addr> {
        tx.read_addr(&S_ROOT_R, self.handle.word(ROOT))
    }

    fn set_root(&self, tx: &mut Tx<'_, '_>, n: Addr) -> TxResult<()> {
        tx.write_addr(&S_ROOT_W, self.handle.word(ROOT), n)
    }

    fn f(tx: &mut Tx<'_, '_>, n: Addr, field: u64) -> TxResult<Addr> {
        tx.read_addr(&S_NODE_R, n.word(field))
    }

    fn set_f(tx: &mut Tx<'_, '_>, n: Addr, field: u64, v: Addr) -> TxResult<()> {
        tx.write_addr(&S_NODE_W, n.word(field), v)
    }

    fn color(tx: &mut Tx<'_, '_>, n: Addr) -> TxResult<u64> {
        if n.is_null() {
            Ok(BLACK) // nil is black
        } else {
            tx.read(&S_NODE_R, n.word(COLOR))
        }
    }

    fn set_color(tx: &mut Tx<'_, '_>, n: Addr, c: u64) -> TxResult<()> {
        debug_assert!(!n.is_null());
        tx.write(&S_NODE_W, n.word(COLOR), c)
    }

    fn bump_size(&self, tx: &mut Tx<'_, '_>, delta: i64) -> TxResult<()> {
        let sz = tx.read(&S_SIZE_R, self.handle.word(SIZE))?;
        tx.write(
            &S_SIZE_W,
            self.handle.word(SIZE),
            sz.wrapping_add(delta as u64),
        )
    }

    // -- rotations ----------------------------------------------------------

    fn rotate_left(&self, tx: &mut Tx<'_, '_>, x: Addr) -> TxResult<()> {
        let y = Self::f(tx, x, RIGHT)?;
        let yl = Self::f(tx, y, LEFT)?;
        Self::set_f(tx, x, RIGHT, yl)?;
        if !yl.is_null() {
            Self::set_f(tx, yl, PARENT, x)?;
        }
        let xp = Self::f(tx, x, PARENT)?;
        Self::set_f(tx, y, PARENT, xp)?;
        if xp.is_null() {
            self.set_root(tx, y)?;
        } else if Self::f(tx, xp, LEFT)? == x {
            Self::set_f(tx, xp, LEFT, y)?;
        } else {
            Self::set_f(tx, xp, RIGHT, y)?;
        }
        Self::set_f(tx, y, LEFT, x)?;
        Self::set_f(tx, x, PARENT, y)
    }

    fn rotate_right(&self, tx: &mut Tx<'_, '_>, x: Addr) -> TxResult<()> {
        let y = Self::f(tx, x, LEFT)?;
        let yr = Self::f(tx, y, RIGHT)?;
        Self::set_f(tx, x, LEFT, yr)?;
        if !yr.is_null() {
            Self::set_f(tx, yr, PARENT, x)?;
        }
        let xp = Self::f(tx, x, PARENT)?;
        Self::set_f(tx, y, PARENT, xp)?;
        if xp.is_null() {
            self.set_root(tx, y)?;
        } else if Self::f(tx, xp, RIGHT)? == x {
            Self::set_f(tx, xp, RIGHT, y)?;
        } else {
            Self::set_f(tx, xp, LEFT, y)?;
        }
        Self::set_f(tx, y, RIGHT, x)?;
        Self::set_f(tx, x, PARENT, y)
    }

    // -- lookup -------------------------------------------------------------

    fn find_node(&self, tx: &mut Tx<'_, '_>, key: u64) -> TxResult<Addr> {
        let mut cur = self.root(tx)?;
        while !cur.is_null() {
            let k = tx.read(&S_NODE_R, cur.word(KEY))?;
            if key == k {
                return Ok(cur);
            }
            cur = Self::f(tx, cur, if key < k { LEFT } else { RIGHT })?;
        }
        Ok(NULL)
    }

    /// Look up `key`, returning its value word.
    pub fn find(&self, tx: &mut Tx<'_, '_>, key: u64) -> TxResult<Option<u64>> {
        let n = self.find_node(tx, key)?;
        if n.is_null() {
            Ok(None)
        } else {
            Ok(Some(tx.read(&S_NODE_R, n.word(VAL))?))
        }
    }

    /// Overwrite the value of an existing key; `false` if absent.
    pub fn update(&self, tx: &mut Tx<'_, '_>, key: u64, val: u64) -> TxResult<bool> {
        let n = self.find_node(tx, key)?;
        if n.is_null() {
            Ok(false)
        } else {
            tx.write(&S_NODE_W, n.word(VAL), val)?;
            Ok(true)
        }
    }

    /// Smallest key `>= key` (range scans in vacation's update task).
    pub fn find_at_least(&self, tx: &mut Tx<'_, '_>, key: u64) -> TxResult<Option<(u64, u64)>> {
        let mut cur = self.root(tx)?;
        let mut best = NULL;
        while !cur.is_null() {
            let k = tx.read(&S_NODE_R, cur.word(KEY))?;
            if k == key {
                best = cur;
                break;
            }
            if k > key {
                best = cur;
                cur = Self::f(tx, cur, LEFT)?;
            } else {
                cur = Self::f(tx, cur, RIGHT)?;
            }
        }
        if best.is_null() {
            Ok(None)
        } else {
            Ok(Some((
                tx.read(&S_NODE_R, best.word(KEY))?,
                tx.read(&S_NODE_R, best.word(VAL))?,
            )))
        }
    }

    // -- insertion ----------------------------------------------------------

    /// Insert `(key, val)`; `false` if the key exists.
    pub fn insert(&self, tx: &mut Tx<'_, '_>, key: u64, val: u64) -> TxResult<bool> {
        let mut parent = NULL;
        let mut cur = self.root(tx)?;
        let mut went_left = false;
        while !cur.is_null() {
            let k = tx.read(&S_NODE_R, cur.word(KEY))?;
            if k == key {
                return Ok(false);
            }
            parent = cur;
            went_left = key < k;
            cur = Self::f(tx, cur, if went_left { LEFT } else { RIGHT })?;
        }
        let z = tx.alloc(NODE_WORDS * 8)?;
        tx.write(&S_INIT_W, z.word(KEY), key)?;
        tx.write(&S_INIT_W, z.word(VAL), val)?;
        tx.write_addr(&S_INIT_W, z.word(PARENT), parent)?;
        tx.write_addr(&S_INIT_W, z.word(LEFT), NULL)?;
        tx.write_addr(&S_INIT_W, z.word(RIGHT), NULL)?;
        tx.write(&S_INIT_W, z.word(COLOR), RED)?;
        if parent.is_null() {
            self.set_root(tx, z)?;
        } else if went_left {
            Self::set_f(tx, parent, LEFT, z)?;
        } else {
            Self::set_f(tx, parent, RIGHT, z)?;
        }
        self.insert_fixup(tx, z)?;
        self.bump_size(tx, 1)?;
        Ok(true)
    }

    fn insert_fixup(&self, tx: &mut Tx<'_, '_>, mut z: Addr) -> TxResult<()> {
        loop {
            let zp = Self::f(tx, z, PARENT)?;
            if zp.is_null() || Self::color(tx, zp)? == BLACK {
                break;
            }
            let zpp = Self::f(tx, zp, PARENT)?; // grandparent exists: zp is red, root is black
            if Self::f(tx, zpp, LEFT)? == zp {
                let uncle = Self::f(tx, zpp, RIGHT)?;
                if Self::color(tx, uncle)? == RED {
                    Self::set_color(tx, zp, BLACK)?;
                    Self::set_color(tx, uncle, BLACK)?;
                    Self::set_color(tx, zpp, RED)?;
                    z = zpp;
                } else {
                    if Self::f(tx, zp, RIGHT)? == z {
                        z = zp;
                        self.rotate_left(tx, z)?;
                    }
                    let zp = Self::f(tx, z, PARENT)?;
                    let zpp = Self::f(tx, zp, PARENT)?;
                    Self::set_color(tx, zp, BLACK)?;
                    Self::set_color(tx, zpp, RED)?;
                    self.rotate_right(tx, zpp)?;
                }
            } else {
                let uncle = Self::f(tx, zpp, LEFT)?;
                if Self::color(tx, uncle)? == RED {
                    Self::set_color(tx, zp, BLACK)?;
                    Self::set_color(tx, uncle, BLACK)?;
                    Self::set_color(tx, zpp, RED)?;
                    z = zpp;
                } else {
                    if Self::f(tx, zp, LEFT)? == z {
                        z = zp;
                        self.rotate_right(tx, z)?;
                    }
                    let zp = Self::f(tx, z, PARENT)?;
                    let zpp = Self::f(tx, zp, PARENT)?;
                    Self::set_color(tx, zp, BLACK)?;
                    Self::set_color(tx, zpp, RED)?;
                    self.rotate_left(tx, zpp)?;
                }
            }
        }
        let root = self.root(tx)?;
        Self::set_color(tx, root, BLACK)
    }

    // -- deletion -----------------------------------------------------------

    /// Replace subtree `u` with `v` (CLRS transplant).
    fn transplant(&self, tx: &mut Tx<'_, '_>, u: Addr, v: Addr) -> TxResult<()> {
        let up = Self::f(tx, u, PARENT)?;
        if up.is_null() {
            self.set_root(tx, v)?;
        } else if Self::f(tx, up, LEFT)? == u {
            Self::set_f(tx, up, LEFT, v)?;
        } else {
            Self::set_f(tx, up, RIGHT, v)?;
        }
        if !v.is_null() {
            Self::set_f(tx, v, PARENT, up)?;
        }
        Ok(())
    }

    fn minimum(tx: &mut Tx<'_, '_>, mut n: Addr) -> TxResult<Addr> {
        loop {
            let l = Self::f(tx, n, LEFT)?;
            if l.is_null() {
                return Ok(n);
            }
            n = l;
        }
    }

    /// Remove `key`, returning its value. Frees the node transactionally.
    pub fn remove(&self, tx: &mut Tx<'_, '_>, key: u64) -> TxResult<Option<u64>> {
        let z = self.find_node(tx, key)?;
        if z.is_null() {
            return Ok(None);
        }
        let val = tx.read(&S_NODE_R, z.word(VAL))?;
        let zl = Self::f(tx, z, LEFT)?;
        let zr = Self::f(tx, z, RIGHT)?;
        let mut y_color = Self::color(tx, z)?;
        let x;
        let xp;
        if zl.is_null() {
            x = zr;
            xp = Self::f(tx, z, PARENT)?;
            self.transplant(tx, z, zr)?;
        } else if zr.is_null() {
            x = zl;
            xp = Self::f(tx, z, PARENT)?;
            self.transplant(tx, z, zl)?;
        } else {
            let y = Self::minimum(tx, zr)?;
            y_color = Self::color(tx, y)?;
            x = Self::f(tx, y, RIGHT)?;
            if Self::f(tx, y, PARENT)? == z {
                xp = y;
                if !x.is_null() {
                    Self::set_f(tx, x, PARENT, y)?;
                }
            } else {
                xp = Self::f(tx, y, PARENT)?;
                self.transplant(tx, y, x)?;
                let zr = Self::f(tx, z, RIGHT)?;
                Self::set_f(tx, y, RIGHT, zr)?;
                Self::set_f(tx, zr, PARENT, y)?;
            }
            self.transplant(tx, z, y)?;
            let zl = Self::f(tx, z, LEFT)?;
            Self::set_f(tx, y, LEFT, zl)?;
            Self::set_f(tx, zl, PARENT, y)?;
            let zc = Self::color(tx, z)?;
            Self::set_color(tx, y, zc)?;
        }
        if y_color == BLACK {
            self.delete_fixup(tx, x, xp)?;
        }
        tx.free(z);
        self.bump_size(tx, -1)?;
        Ok(Some(val))
    }

    /// CLRS delete fix-up with `x` possibly nil; `xp` tracks its parent.
    fn delete_fixup(&self, tx: &mut Tx<'_, '_>, mut x: Addr, mut xp: Addr) -> TxResult<()> {
        loop {
            let root = self.root(tx)?;
            if x == root || Self::color(tx, x)? == RED {
                break;
            }
            if Self::f(tx, xp, LEFT)? == x {
                let mut w = Self::f(tx, xp, RIGHT)?;
                if Self::color(tx, w)? == RED {
                    Self::set_color(tx, w, BLACK)?;
                    Self::set_color(tx, xp, RED)?;
                    self.rotate_left(tx, xp)?;
                    w = Self::f(tx, xp, RIGHT)?;
                }
                let wl = Self::f(tx, w, LEFT)?;
                let wr = Self::f(tx, w, RIGHT)?;
                if Self::color(tx, wl)? == BLACK && Self::color(tx, wr)? == BLACK {
                    Self::set_color(tx, w, RED)?;
                    x = xp;
                    xp = Self::f(tx, x, PARENT)?;
                } else {
                    if Self::color(tx, wr)? == BLACK {
                        if !wl.is_null() {
                            Self::set_color(tx, wl, BLACK)?;
                        }
                        Self::set_color(tx, w, RED)?;
                        self.rotate_right(tx, w)?;
                        w = Self::f(tx, xp, RIGHT)?;
                    }
                    let xpc = Self::color(tx, xp)?;
                    Self::set_color(tx, w, xpc)?;
                    Self::set_color(tx, xp, BLACK)?;
                    let wr = Self::f(tx, w, RIGHT)?;
                    if !wr.is_null() {
                        Self::set_color(tx, wr, BLACK)?;
                    }
                    self.rotate_left(tx, xp)?;
                    x = self.root(tx)?;
                    xp = NULL;
                }
            } else {
                let mut w = Self::f(tx, xp, LEFT)?;
                if Self::color(tx, w)? == RED {
                    Self::set_color(tx, w, BLACK)?;
                    Self::set_color(tx, xp, RED)?;
                    self.rotate_right(tx, xp)?;
                    w = Self::f(tx, xp, LEFT)?;
                }
                let wl = Self::f(tx, w, LEFT)?;
                let wr = Self::f(tx, w, RIGHT)?;
                if Self::color(tx, wl)? == BLACK && Self::color(tx, wr)? == BLACK {
                    Self::set_color(tx, w, RED)?;
                    x = xp;
                    xp = Self::f(tx, x, PARENT)?;
                } else {
                    if Self::color(tx, wl)? == BLACK {
                        if !wr.is_null() {
                            Self::set_color(tx, wr, BLACK)?;
                        }
                        Self::set_color(tx, w, RED)?;
                        self.rotate_left(tx, w)?;
                        w = Self::f(tx, xp, LEFT)?;
                    }
                    let xpc = Self::color(tx, xp)?;
                    Self::set_color(tx, w, xpc)?;
                    Self::set_color(tx, xp, BLACK)?;
                    let wl = Self::f(tx, w, LEFT)?;
                    if !wl.is_null() {
                        Self::set_color(tx, wl, BLACK)?;
                    }
                    self.rotate_right(tx, xp)?;
                    x = self.root(tx)?;
                    xp = NULL;
                }
            }
        }
        if !x.is_null() {
            Self::set_color(tx, x, BLACK)?;
        }
        Ok(())
    }

    /// Transactional size.
    pub fn len(&self, tx: &mut Tx<'_, '_>) -> TxResult<u64> {
        tx.read(&S_SIZE_R, self.handle.word(SIZE))
    }

    // --- sequential helpers (setup / verification) -------------------------

    pub fn seq_len(&self, w: &WorkerCtx<'_>) -> u64 {
        w.load(self.handle.word(SIZE))
    }

    /// In-order `(key, val)` pairs; verification only.
    pub fn seq_collect(&self, w: &WorkerCtx<'_>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut stack = Vec::new();
        let mut cur = w.load_addr(self.handle.word(ROOT));
        while !cur.is_null() || !stack.is_empty() {
            while !cur.is_null() {
                stack.push(cur);
                cur = w.load_addr(cur.word(LEFT));
            }
            let n = stack.pop().unwrap();
            out.push((w.load(n.word(KEY)), w.load(n.word(VAL))));
            cur = w.load_addr(n.word(RIGHT));
        }
        out
    }

    /// Check the red-black invariants sequentially; panics with a message
    /// on violation, returns black-height on success.
    pub fn seq_check_invariants(&self, w: &WorkerCtx<'_>) -> usize {
        fn check(w: &WorkerCtx<'_>, n: Addr, lo: Option<u64>, hi: Option<u64>) -> usize {
            if n.is_null() {
                return 1; // nil is black
            }
            let k = w.load(n.word(KEY));
            if let Some(lo) = lo {
                assert!(k > lo, "BST order violated at key {k}");
            }
            if let Some(hi) = hi {
                assert!(k < hi, "BST order violated at key {k}");
            }
            let c = w.load(n.word(COLOR));
            let l = w.load_addr(n.word(LEFT));
            let r = w.load_addr(n.word(RIGHT));
            if c == RED {
                for child in [l, r] {
                    if !child.is_null() {
                        assert_eq!(
                            w.load(child.word(COLOR)),
                            BLACK,
                            "red node {k} has red child"
                        );
                    }
                }
            }
            for child in [l, r] {
                if !child.is_null() {
                    assert_eq!(
                        w.load_addr(child.word(PARENT)),
                        n,
                        "parent pointer broken under {k}"
                    );
                }
            }
            let bl = check(w, l, lo, Some(k));
            let br = check(w, r, Some(k), hi);
            assert_eq!(bl, br, "black-height mismatch at key {k}");
            bl + if c == BLACK { 1 } else { 0 }
        }
        let root = w.load_addr(self.handle.word(ROOT));
        if !root.is_null() {
            assert_eq!(w.load(root.word(COLOR)), BLACK, "root must be black");
        }
        check(w, root, None, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use stm::{StmRuntime, TxConfig};
    use txmem::MemConfig;

    fn rt() -> StmRuntime {
        StmRuntime::new(MemConfig::small(), TxConfig::runtime_tree_full())
    }

    #[test]
    fn insert_find_update() {
        let rt = rt();
        let t = TxRbTree::create(&rt);
        let mut w = rt.spawn_worker();
        for k in [50u64, 20, 80, 10, 30, 70, 90] {
            assert!(w.txn(|tx| t.insert(tx, k, k + 1)));
        }
        assert!(!w.txn(|tx| t.insert(tx, 50, 0)));
        assert_eq!(w.txn(|tx| t.find(tx, 30)), Some(31));
        assert_eq!(w.txn(|tx| t.find(tx, 31)), None);
        assert!(w.txn(|tx| t.update(tx, 30, 99)));
        assert_eq!(w.txn(|tx| t.find(tx, 30)), Some(99));
        assert!(!w.txn(|tx| t.update(tx, 31, 0)));
        t.seq_check_invariants(&w);
        assert_eq!(t.seq_len(&w), 7);
    }

    #[test]
    fn find_at_least_scans_upward() {
        let rt = rt();
        let t = TxRbTree::create(&rt);
        let mut w = rt.spawn_worker();
        for k in [10u64, 20, 30] {
            w.txn(|tx| t.insert(tx, k, k));
        }
        assert_eq!(w.txn(|tx| t.find_at_least(tx, 15)), Some((20, 20)));
        assert_eq!(w.txn(|tx| t.find_at_least(tx, 20)), Some((20, 20)));
        assert_eq!(w.txn(|tx| t.find_at_least(tx, 31)), None);
        assert_eq!(w.txn(|tx| t.find_at_least(tx, 0)), Some((10, 10)));
    }

    #[test]
    fn randomized_against_model() {
        let rt = StmRuntime::new(
            MemConfig {
                max_threads: 4,
                stack_words: 1 << 10,
                heap_words: 1 << 18,
            },
            TxConfig::runtime_tree_full(),
        );
        let t = TxRbTree::create(&rt);
        let mut w = rt.spawn_worker();
        let mut model = std::collections::BTreeMap::new();
        let mut rng = SplitMix64::new(2024);
        for step in 0..3000 {
            let key = rng.below(200);
            match rng.below(3) {
                0 => {
                    let inserted = w.txn(|tx| t.insert(tx, key, key * 2));
                    assert_eq!(
                        inserted,
                        model.insert(key, key * 2).is_none(),
                        "step {step}"
                    );
                }
                1 => {
                    let removed = w.txn(|tx| t.remove(tx, key));
                    assert_eq!(removed, model.remove(&key), "step {step}");
                }
                _ => {
                    let found = w.txn(|tx| t.find(tx, key));
                    assert_eq!(found, model.get(&key).copied(), "step {step}");
                }
            }
            if step % 256 == 0 {
                t.seq_check_invariants(&w);
            }
        }
        t.seq_check_invariants(&w);
        let collected = t.seq_collect(&w);
        let expect: Vec<_> = model.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(collected, expect);
        assert_eq!(t.seq_len(&w), model.len() as u64);
    }

    #[test]
    fn remove_all_leaves_empty_tree() {
        let rt = rt();
        let t = TxRbTree::create(&rt);
        let mut w = rt.spawn_worker();
        for k in 0..64u64 {
            w.txn(|tx| t.insert(tx, k, k));
        }
        for k in (0..64u64).rev() {
            assert_eq!(w.txn(|tx| t.remove(tx, k)), Some(k));
            t.seq_check_invariants(&w);
        }
        assert_eq!(t.seq_len(&w), 0);
        assert!(t.seq_collect(&w).is_empty());
    }

    #[test]
    fn concurrent_disjoint_inserts_keep_invariants() {
        let rt = StmRuntime::new(MemConfig::small(), TxConfig::runtime_tree_full());
        let t = TxRbTree::create(&rt);
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let rt = &rt;
                s.spawn(move || {
                    let mut w = rt.spawn_worker();
                    for i in 0..64u64 {
                        w.txn(|tx| t.insert(tx, tid + i * 4, 0));
                    }
                });
            }
        });
        let w = rt.spawn_worker();
        assert_eq!(t.seq_len(&w), 256);
        t.seq_check_invariants(&w);
    }

    #[test]
    fn aborted_insert_leaves_no_trace() {
        let rt = rt();
        let t = TxRbTree::create(&rt);
        let mut w = rt.spawn_worker();
        w.txn(|tx| t.insert(tx, 5, 5));
        let r: Result<(), u64> = w.txn_result(|tx| {
            t.insert(tx, 6, 6)?;
            t.remove(tx, 5)?;
            Err(stm::Abort::User(0))
        });
        assert!(r.is_err());
        assert_eq!(t.seq_collect(&w), vec![(5, 5)]);
        t.seq_check_invariants(&w);
    }
}
