//! Growable vector (STAMP `lib/vector.c`). In STAMP this is `PVECTOR_*` —
//! used for *thread-local* scratch data like bayes' query vectors (paper
//! Fig. 1(b)); the original code accesses it without instrumentation, so
//! the transactional accessors here use `Site::unneeded`: a naive compiler
//! adds barriers, automatic capture analysis cannot remove them (the vector
//! outlives its allocating transaction), only annotations can.

use stm::{Site, StmRuntime, Tx, TxResult, WorkerCtx};
use txmem::Addr;

// Handle: [capacity, size, data_ptr]
const CAP: u64 = 0;
const SIZE: u64 = 1;
const DATA: u64 = 2;

static S_META_R: Site = Site::unneeded("vector.meta.read");
static S_META_W: Site = Site::unneeded("vector.meta.write");
static S_DATA_R: Site = Site::unneeded("vector.data.read");
static S_DATA_W: Site = Site::unneeded("vector.data.write");

#[derive(Clone, Copy, Debug)]
pub struct TxVector {
    pub handle: Addr,
}

impl TxVector {
    /// Allocate from the shared pool during setup.
    pub fn create(rt: &StmRuntime, capacity: u64) -> TxVector {
        let capacity = capacity.max(2);
        let handle = rt.alloc_global(3 * 8);
        let data = rt.alloc_global(capacity * 8);
        rt.mem().store(handle.word(CAP), capacity);
        rt.mem().store(handle.word(SIZE), 0);
        rt.mem().store(handle.word(DATA), data.raw());
        TxVector { handle }
    }

    /// Allocate thread-locally (bayes' `PVECTOR_ALLOC`): the vector lives
    /// outside any transaction, so it is *not* captured — the paper's
    /// thread-local category.
    pub fn create_local(w: &mut WorkerCtx<'_>, capacity: u64) -> TxVector {
        let capacity = capacity.max(2);
        let handle = w.alloc_raw(3 * 8);
        let data = w.alloc_raw(capacity * 8);
        w.store(handle.word(CAP), capacity);
        w.store(handle.word(SIZE), 0);
        w.store(handle.word(DATA), data.raw());
        TxVector { handle }
    }

    /// Total bytes spanned by handle + backing store (for annotations).
    pub fn annotate(&self, w: &mut WorkerCtx<'_>) {
        let cap = w.load(self.handle.word(CAP));
        let data = w.load_addr(self.handle.word(DATA));
        w.add_private_memory_block(self.handle, 3 * 8);
        w.add_private_memory_block(data, cap * 8);
    }

    pub fn push(&self, tx: &mut Tx<'_, '_>, val: u64) -> TxResult<()> {
        let cap = tx.read(&S_META_R, self.handle.word(CAP))?;
        let size = tx.read(&S_META_R, self.handle.word(SIZE))?;
        assert!(size < cap, "TxVector overflow: created with capacity {cap}");
        let data = tx.read_addr(&S_META_R, self.handle.word(DATA))?;
        tx.write(&S_DATA_W, data.word(size), val)?;
        tx.write(&S_META_W, self.handle.word(SIZE), size + 1)
    }

    pub fn get(&self, tx: &mut Tx<'_, '_>, i: u64) -> TxResult<u64> {
        let data = tx.read_addr(&S_META_R, self.handle.word(DATA))?;
        tx.read(&S_DATA_R, data.word(i))
    }

    pub fn set(&self, tx: &mut Tx<'_, '_>, i: u64, val: u64) -> TxResult<()> {
        let data = tx.read_addr(&S_META_R, self.handle.word(DATA))?;
        tx.write(&S_DATA_W, data.word(i), val)
    }

    pub fn len(&self, tx: &mut Tx<'_, '_>) -> TxResult<u64> {
        tx.read(&S_META_R, self.handle.word(SIZE))
    }

    pub fn clear(&self, tx: &mut Tx<'_, '_>) -> TxResult<()> {
        tx.write(&S_META_W, self.handle.word(SIZE), 0)
    }

    pub fn seq_len(&self, w: &WorkerCtx<'_>) -> u64 {
        w.load(self.handle.word(SIZE))
    }

    pub fn seq_get(&self, w: &WorkerCtx<'_>, i: u64) -> u64 {
        let data = w.load_addr(self.handle.word(DATA));
        w.load(data.word(i))
    }

    pub fn seq_clear(&self, w: &WorkerCtx<'_>) {
        w.store(self.handle.word(SIZE), 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm::{Mode, StmRuntime, TxConfig};
    use txmem::MemConfig;

    #[test]
    fn push_get_set_clear() {
        let rt = StmRuntime::new(MemConfig::small(), TxConfig::default());
        let v = TxVector::create(&rt, 16);
        let mut w = rt.spawn_worker();
        w.txn(|tx| {
            v.push(tx, 10)?;
            v.push(tx, 20)?;
            v.set(tx, 0, 11)?;
            Ok(())
        });
        assert_eq!(v.seq_len(&w), 2);
        assert_eq!(v.seq_get(&w, 0), 11);
        assert_eq!(v.seq_get(&w, 1), 20);
        w.txn(|tx| v.clear(tx));
        assert_eq!(v.seq_len(&w), 0);
    }

    #[test]
    fn thread_local_vector_is_not_captured() {
        // Allocated outside a transaction: runtime capture analysis must
        // NOT elide its barriers (that is the whole thread-local problem of
        // paper §2.2.2).
        let rt = StmRuntime::new(MemConfig::small(), TxConfig::runtime_tree_full());
        let mut w = rt.spawn_worker();
        let v = TxVector::create_local(&mut w, 8);
        w.txn(|tx| v.push(tx, 1));
        assert_eq!(w.stats.writes.elided_heap, 0);
        assert!(
            w.stats.writes.full >= 2,
            "size + data writes take full barriers"
        );
    }

    #[test]
    fn annotated_vector_elides_barriers() {
        let mut cfg = TxConfig::with_mode(Mode::Baseline);
        cfg.annotations = true;
        let rt = StmRuntime::new(MemConfig::small(), cfg);
        let mut w = rt.spawn_worker();
        let v = TxVector::create_local(&mut w, 8);
        v.annotate(&mut w);
        w.txn(|tx| {
            v.push(tx, 5)?;
            v.get(tx, 0)?;
            Ok(())
        });
        assert!(w.stats.writes.elided_annotation >= 2);
        assert!(w.stats.reads.elided_annotation >= 1);
        assert_eq!(w.stats.writes.full, 0);
    }
}
