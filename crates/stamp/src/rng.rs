/// Deterministic PRNG (SplitMix64). STAMP ships its own Mersenne-Twister so
/// runs are reproducible; we use SplitMix64 for the same reason (and to keep
/// the workspace dependency-free).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 {
            state: seed.wrapping_add(0x9E3779B97F4A7C15),
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SplitMix64::new(3);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[r.below(8) as usize] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket count {b}");
        }
    }
}
