//! `bayes` — Bayesian network structure learning (STAMP `bayes`).
//!
//! Workers pop the highest-scoring learner task from a shared sorted task
//! list — using the *stack-allocated* list iterator of the paper's Figure
//! 1(a) — then evaluate it: populate a *thread-local* query vector (the
//! paper's Figure 1(b) `queryVectorPtr`), read the read-only ADTree counts
//! (paper §2.2.3), and commit the learned edge into the shared network.
//! Some tasks spawn follow-up tasks (captured list-node allocations).
//!
//! This app is the showcase for all three "unnecessary barrier" categories
//! beyond captured memory: thread-local vectors, read-only ADTree, and the
//! transaction-local iterator — which is why it is the natural target for
//! the `add_private_memory_block` annotation ablation (enabled through
//! `TxConfig::annotations`).

use stm::{Site, StmRuntime, TxConfig};
use txmem::MemConfig;

use crate::collections::{ListIter, TxList, TxVector};
use crate::rng::SplitMix64;

use super::{run_parallel, RunOutcome, Scale};

static S_ADTREE_R: Site = Site::unneeded("bayes.adtree.read");
static S_NET_W: Site = Site::shared("bayes.network.write");
static S_CTR_R: Site = Site::shared("bayes.counter.read");
static S_CTR_W: Site = Site::shared("bayes.counter.write");

#[derive(Clone, Debug)]
pub struct Config {
    pub vars: u64,
    pub tasks: u64,
    /// Budget of follow-up tasks that may be spawned.
    pub max_followups: u64,
    pub seed: u64,
}

impl Config {
    pub fn scaled(scale: Scale) -> Config {
        let (vars, tasks) = match scale {
            Scale::Test => (16, 128),
            Scale::Small => (32, 1 << 11),
            Scale::Full => (48, 1 << 13),
        };
        Config {
            vars,
            tasks,
            max_followups: tasks / 4,
            seed: 0xbae5,
        }
    }
}

/// Task key: higher score ⇒ smaller key ⇒ earlier in the sorted list.
fn task_key(score: u64, id: u64) -> u64 {
    ((1000 - score) << 24) | id
}

pub fn run(cfg: &Config, txcfg: TxConfig, threads: usize) -> RunOutcome {
    let v = cfg.vars;
    let mem = MemConfig {
        max_threads: threads.max(1) + 2,
        stack_words: 1 << 12,
        heap_words: (v * v * 2 + (cfg.tasks + cfg.max_followups) * 8 + (1 << 16)) as usize,
    };
    let rt = StmRuntime::new(mem, txcfg);
    let tasks = TxList::create(&rt);
    let adtree = rt.alloc_global(v * v * 8); // read-only after setup
    let network = rt.alloc_global(v * v * 8); // learned adjacency

    // Shared words: [processed, followups_spawned, next_task_id]
    let counters = rt.alloc_global(3 * 8);

    {
        let mut w = rt.spawn_worker();
        let mut rng = SplitMix64::new(cfg.seed);
        for i in 0..v * v {
            w.store(adtree.word(i), rng.below(1000));
            w.store(network.word(i), 0);
        }
        for id in 0..cfg.tasks {
            let score = rng.below(1000);
            w.txn(|tx| tasks.insert(tx, task_key(score, id), id));
        }
        w.store(counters, 0);
        w.store(counters.word(1), 0);
        w.store(counters.word(2), cfg.tasks);
        w.flush_stats();
    }
    rt.reset_stats();

    let elapsed = run_parallel(&rt, threads, |w, _t| {
        // Thread-local query vector, reused across all of this worker's
        // transactions (paper Fig. 1b). Annotated as private when the
        // annotation optimization is enabled.
        let mut qvec = TxVector::create_local(w, v);
        if w.runtime().config().annotations {
            qvec.annotate(w);
        }
        loop {
            let task = w.txn(|tx| {
                // Pop the best task through the stack iterator (Fig. 1a);
                // the cursor frame pops itself when the iterator drops.
                let (key, id) = {
                    let mut it = ListIter::begin(tx, &tasks)?;
                    if !it.has_next()? {
                        return Ok(None);
                    }
                    it.next()?
                };
                tasks.remove(tx, key)?;

                // Evaluate: populate the query vector from the read-only
                // ADTree (counts for each candidate parent variable).
                let from = id % v;
                let to = (id / 7) % v;
                qvec.clear(tx)?;
                let mut loglik = 0.0f64;
                for p in 0..v {
                    let count = tx.read(&S_ADTREE_R, adtree.word(from * v + p))?;
                    qvec.push(tx, count)?;
                    loglik += (1.0 + count as f64).ln();
                }
                let _ = loglik;

                // Candidate evaluation builds a transaction-local structure
                // per task (STAMP's bayes allocates its query/task records
                // inside the learner transaction — the reason its Figure 8
                // write profile is dominated by tx-local heap).
                let candidates = TxList::create_tx(tx)?;
                for p in 0..v.min(8) {
                    let score = qvec.get(tx, p)?;
                    candidates.insert(tx, score * v + p, p)?;
                }
                let best = candidates.pop_front(tx)?;
                while candidates.pop_front(tx)?.is_some() {}
                tx.free(candidates.handle);
                let _ = best;
                // Learn the edge (genuinely shared write).
                if from != to {
                    tx.write(&S_NET_W, network.word(from * v + to), 1)?;
                }
                let done = tx.read(&S_CTR_R, counters)?;
                tx.write(&S_CTR_W, counters, done + 1)?;

                // Possibly spawn a follow-up task (captured node insert).
                let spawned = tx.read(&S_CTR_R, counters.word(1))?;
                let wants_followup = id.wrapping_mul(2654435761) % 100 < 25;
                if wants_followup && spawned < cfg.max_followups {
                    tx.write(&S_CTR_W, counters.word(1), spawned + 1)?;
                    let next_id = tx.read(&S_CTR_R, counters.word(2))?;
                    tx.write(&S_CTR_W, counters.word(2), next_id + 1)?;
                    let score = next_id.wrapping_mul(40503) % 1000;
                    tasks.insert(tx, task_key(score, next_id), next_id)?;
                }
                Ok(Some(id))
            });
            if task.is_none() {
                break;
            }
        }
        let _ = &mut qvec;
    });

    let stats = rt.collect_stats();
    let w = rt.spawn_worker();
    let processed = w.load(counters);
    let spawned = w.load(counters.word(1));
    let mut verified = processed == cfg.tasks + spawned;
    verified &= tasks.seq_len(&w) == 0;
    verified &= spawned <= cfg.max_followups;
    // The network must contain only 0/1 entries and at least one edge.
    let mut edges = 0;
    for i in 0..v * v {
        let x = w.load(network.word(i));
        if x > 1 {
            verified = false;
        }
        edges += x;
    }
    verified &= edges > 0 && edges <= processed;

    RunOutcome {
        benchmark: "bayes",
        threads,
        elapsed,
        stats,
        verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_and_verifies() {
        let cfg = Config::scaled(Scale::Test);
        for threads in [1, 4] {
            let out = run(&cfg, TxConfig::default(), threads);
            assert!(out.verified, "threads={threads}");
        }
    }

    #[test]
    fn stack_iterator_and_node_allocs_are_captured() {
        let cfg = Config::scaled(Scale::Test);
        let out = run(&cfg, TxConfig::runtime_tree_full(), 2);
        assert!(out.verified);
        let s = &out.stats;
        assert!(s.reads.elided_stack > 0, "Fig 1a iterator reads");
        assert!(s.writes.elided_stack > 0, "Fig 1a iterator writes");
        assert!(s.writes.elided_heap > 0, "follow-up task node init");
    }

    #[test]
    fn annotations_elide_query_vector_accesses() {
        let cfg = Config::scaled(Scale::Test);
        let mut plain = TxConfig::default();
        plain.annotations = false;
        let mut annotated = TxConfig::default();
        annotated.annotations = true;
        let a = run(&cfg, plain, 2);
        let b = run(&cfg, annotated, 2);
        assert!(a.verified && b.verified);
        assert_eq!(a.stats.all_accesses().elided_annotation, 0);
        assert!(
            b.stats.all_accesses().elided_annotation > 0,
            "annotated query vectors must elide barriers"
        );
    }
}
