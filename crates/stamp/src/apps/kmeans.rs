//! `kmeans` — iterative clustering (STAMP `kmeans`).
//!
//! Threads partition the points; the nearest-center computation reads
//! thread-partitioned points and the previous iteration's centers (data the
//! original STAMP accesses *without* barriers — a naive compiler still
//! instruments those reads, giving Figure 8's big "not required for other
//! reasons" share). The transaction wraps only the accumulator update:
//! `count += 1; sum[d] += coord[d]` on the chosen cluster — all genuinely
//! shared accesses, which is why the paper finds essentially **no** barrier
//! elision opportunity here and why the runtime checks can only add
//! overhead (Figure 10's kmeans slowdown).
//!
//! High contention = few clusters (every update hits the same records);
//! low contention = more clusters.

use stm::{Site, StmRuntime, TxConfig};
use txmem::MemConfig;

use crate::rng::SplitMix64;

use super::{chunk, run_parallel, RunOutcome, Scale};

static S_POINT_R: Site = Site::unneeded("kmeans.point.read");
static S_CENTER_R: Site = Site::unneeded("kmeans.center.read");
static S_ACC_R: Site = Site::shared("kmeans.accumulator.read");
static S_ACC_W: Site = Site::shared("kmeans.accumulator.write");

#[derive(Clone, Debug)]
pub struct Config {
    pub points: u64,
    pub dims: u64,
    pub clusters: u64,
    pub iterations: u64,
    pub seed: u64,
    pub high_contention: bool,
}

impl Config {
    pub fn scaled(scale: Scale, high_contention: bool) -> Config {
        let points = match scale {
            Scale::Test => 512,
            Scale::Small => 1 << 13,
            Scale::Full => 1 << 16,
        };
        Config {
            points,
            dims: 4,
            // STAMP kmeans high uses fewer clusters (-c 15 vs -c 40 in the
            // low-contention run); scaled down proportionally.
            clusters: if high_contention { 4 } else { 16 },
            iterations: 3,
            seed: 0x6bea,
            high_contention,
        }
    }
}

pub fn run(cfg: &Config, txcfg: TxConfig, threads: usize) -> RunOutcome {
    let name = if cfg.high_contention {
        "kmeans high"
    } else {
        "kmeans low"
    };
    let d = cfg.dims;
    let mem = MemConfig {
        max_threads: threads.max(1) + 2,
        stack_words: 1 << 12,
        heap_words: (cfg.points * d + cfg.clusters * (2 * d + 2) + (1 << 16)) as usize,
    };
    let rt = StmRuntime::new(mem, txcfg);

    // points[i][d], centers[c][d], accumulators[c] = [count, sum_0..sum_d-1]
    let points = rt.alloc_global(cfg.points * d * 8);
    let centers = rt.alloc_global(cfg.clusters * d * 8);
    let accums = rt.alloc_global(cfg.clusters * (d + 1) * 8);
    {
        let w = rt.spawn_worker();
        let mut rng = SplitMix64::new(cfg.seed);
        for i in 0..cfg.points * d {
            w.store_f64(points.word(i), rng.next_f64() * 100.0);
        }
        // Initial centers: first k points (standard Forgy-ish seeding).
        for c in 0..cfg.clusters {
            for j in 0..d {
                let v = w.load_f64(points.word(c * d + j));
                w.store_f64(centers.word(c * d + j), v);
            }
        }
        for i in 0..cfg.clusters * (d + 1) {
            w.store(accums.word(i), 0);
        }
    }
    rt.reset_stats();

    let mut total_elapsed = std::time::Duration::ZERO;
    for _iter in 0..cfg.iterations {
        let elapsed = run_parallel(&rt, threads, |w, t| {
            let (lo, hi) = chunk(cfg.points, threads, t);
            let d_us = d as usize;
            let mut pbuf = vec![0u64; d_us];
            let mut cbuf = vec![0u64; d_us];
            let mut sbuf = vec![0u64; d_us];
            for i in lo..hi {
                let c = w.txn(|tx| {
                    // Nearest-center search: reads the paper classifies as
                    // "not required" (thread-partitioned / stable data).
                    // Row-wise ranged reads — one classification per
                    // `dims`-word row instead of one per coordinate.
                    tx.read_range(&S_POINT_R, points.word(i * d), &mut pbuf)?;
                    let mut best = 0u64;
                    let mut best_dist = f64::INFINITY;
                    for c in 0..cfg.clusters {
                        tx.read_range(&S_CENTER_R, centers.word(c * d), &mut cbuf)?;
                        let mut dist = 0.0;
                        for j in 0..d_us {
                            let p = f64::from_bits(pbuf[j]);
                            let q = f64::from_bits(cbuf[j]);
                            dist += (p - q) * (p - q);
                        }
                        if dist < best_dist {
                            best_dist = dist;
                            best = c;
                        }
                    }
                    // The genuinely shared update (STAMP's atomic block):
                    // read the sum row, add the point, write it back.
                    let acc = accums.word(best * (d + 1));
                    let count = tx.read(&S_ACC_R, acc)?;
                    tx.write(&S_ACC_W, acc, count + 1)?;
                    let sums = accums.word(best * (d + 1) + 1);
                    tx.read_range(&S_ACC_R, sums, &mut sbuf)?;
                    for j in 0..d_us {
                        let s = f64::from_bits(sbuf[j]);
                        let p = f64::from_bits(pbuf[j]);
                        sbuf[j] = (s + p).to_bits();
                    }
                    tx.write_range(&S_ACC_W, sums, &sbuf)?;
                    Ok(best)
                });
                let _ = c;
            }
        });
        total_elapsed += elapsed;
        // Sequential reduction between iterations (STAMP does the same on
        // the master thread): new centers = sum / count, reset accumulators.
        let w = rt.spawn_worker();
        for c in 0..cfg.clusters {
            let count = w.load(accums.word(c * (d + 1)));
            if count > 0 {
                for j in 0..d {
                    let s = w.load_f64(accums.word(c * (d + 1) + 1 + j));
                    w.store_f64(centers.word(c * d + j), s / count as f64);
                }
            }
            for j in 0..=d {
                w.store(accums.word(c * (d + 1) + j), 0);
            }
        }
    }

    let stats = rt.collect_stats();
    // Verification: every point was assigned exactly once per iteration
    // (commit count) and the centers are finite.
    let w = rt.spawn_worker();
    let mut verified = stats.commits == cfg.points * cfg.iterations;
    for c in 0..cfg.clusters * d {
        if !w.load_f64(centers.word(c)).is_finite() {
            verified = false;
        }
    }
    RunOutcome {
        benchmark: name,
        threads,
        elapsed: total_elapsed,
        stats,
        verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_verifies() {
        let cfg = Config::scaled(Scale::Test, true);
        let out = run(&cfg, TxConfig::default(), 2);
        assert!(out.verified);
        assert_eq!(out.stats.commits, cfg.points * cfg.iterations);
    }

    #[test]
    fn no_elision_opportunity() {
        // The paper's key observation for kmeans: runtime capture analysis
        // finds (almost) nothing to elide.
        let cfg = Config::scaled(Scale::Test, true);
        let out = run(&cfg, TxConfig::runtime_tree_full(), 1);
        assert!(out.verified);
        let all = out.stats.all_accesses();
        assert_eq!(all.elided(), 0, "kmeans has no captured accesses");
        assert!(all.total > 0);
    }

    #[test]
    fn deterministic_assignment_counts_across_modes() {
        let cfg = Config::scaled(Scale::Test, false);
        let a = run(&cfg, TxConfig::default(), 1);
        let b = run(&cfg, TxConfig::runtime_tree_full(), 1);
        assert_eq!(a.stats.commits, b.stats.commits);
    }
}
