//! `vacation` — the travel reservation system (STAMP's flagship benchmark,
//! and the one where the paper sees its 14%/18% improvements).
//!
//! A manager keeps four red-black-tree tables: cars, flights, rooms (id →
//! resource record) and customers (id → customer record with a reservation
//! list). Client transactions are:
//!
//! * **make reservation** (`user_pct`%): query `queries_per_task` random
//!   resources, then reserve the best available of each type for a customer
//!   — creating the customer record (captured allocation) on first use and
//!   appending reservation list nodes (captured allocations);
//! * **delete customer**: release all of a customer's reservations and
//!   remove the record;
//! * **update tables**: add new resource records (captured allocations) or
//!   retire idle ones.
//!
//! High vs. low contention follows STAMP's `-n/-q/-u` knobs: high queries a
//! narrower id range with more queries per task.
//!
//! Verification: resource conservation — for every resource,
//! `total == available + reservations held by customers`, plus red-black
//! invariants on all four trees.

use stm::{Site, StmRuntime, TxConfig, WorkerCtx};
use txmem::{Addr, MemConfig};

use crate::collections::{TxList, TxRbTree};
use crate::rng::SplitMix64;

use super::{chunk, run_parallel, RunOutcome, Scale};

// Resource record: [total, avail, price]
const R_TOTAL: u64 = 0;
const R_AVAIL: u64 = 1;
const R_PRICE: u64 = 2;
const R_WORDS: u64 = 3;

// Customer record: embedded reservation list handle (2 words: head, size).
const C_WORDS: u64 = 2;

static S_RES_R: Site = Site::shared("vacation.resource.read");
static S_RES_W: Site = Site::shared("vacation.resource.write");
// Resource records are allocated by the caller and initialized by
// `resource_init`, mirroring STAMP's `reservation_alloc` constructor; the
// constructor's validation guard (an early return in the TL equivalent)
// defeats bounded inlining, so only the interprocedural parameter-capture
// summary proves these writes target transaction-local memory
// (cross-checked in tests/cross_check.rs).
static S_RES_INIT: Site = Site::captured_interproc("vacation.resource_init.write");
static S_CUST_INIT: Site = Site::captured_local("vacation.customer_init.write");

const NUM_TYPES: u64 = 3; // cars, flights, rooms

#[derive(Clone, Debug)]
pub struct Config {
    pub relations: u64,
    pub tasks: u64,
    pub queries_per_task: u64,
    /// Percent of the id space queries span (STAMP `-q`; smaller = hotter).
    pub query_range_pct: u64,
    /// Percent of tasks that are reservations (STAMP `-u`).
    pub user_pct: u64,
    pub seed: u64,
}

impl Config {
    pub fn scaled(scale: Scale, high_contention: bool) -> Config {
        let (relations, tasks) = match scale {
            Scale::Test => (128, 256),
            Scale::Small => (1 << 12, 1 << 13),
            Scale::Full => (1 << 16, 1 << 15),
        };
        if high_contention {
            // STAMP vacation high: -n4 -q60 -u90
            Config {
                relations,
                tasks,
                queries_per_task: 4,
                query_range_pct: 60,
                user_pct: 90,
                seed: 0x5ac,
            }
        } else {
            // STAMP vacation low: -n2 -q90 -u98
            Config {
                relations,
                tasks,
                queries_per_task: 2,
                query_range_pct: 90,
                user_pct: 98,
                seed: 0x5ac,
            }
        }
    }
}

struct Manager {
    tables: [TxRbTree; NUM_TYPES as usize],
    customers: TxRbTree,
}

/// STAMP `reservation_alloc` analogue: initialize a freshly allocated
/// resource record *through the caller's pointer*. Every call site passes
/// memory captured by the running transaction, which is exactly what the
/// interprocedural analysis's parameter meet proves (see [`S_RES_INIT`]).
fn resource_init(tx: &mut stm::Tx<'_, '_>, rec: Addr, total: u64, price: u64) -> stm::TxResult<()> {
    tx.write(&S_RES_INIT, rec.word(R_TOTAL), total)?;
    tx.write(&S_RES_INIT, rec.word(R_AVAIL), total)?;
    tx.write(&S_RES_INIT, rec.word(R_PRICE), price)?;
    Ok(())
}

pub fn run(cfg: &Config, txcfg: TxConfig, threads: usize) -> RunOutcome {
    let name = if cfg.user_pct >= 95 {
        "vacation low"
    } else {
        "vacation high"
    };
    let mem = MemConfig {
        max_threads: threads.max(1) + 2,
        stack_words: 1 << 12,
        heap_words: (1 << 20).max(cfg.relations as usize * 64 + cfg.tasks as usize * 16),
    };
    let rt = StmRuntime::new(mem, txcfg);
    let mgr = Manager {
        tables: [
            TxRbTree::create(&rt),
            TxRbTree::create(&rt),
            TxRbTree::create(&rt),
        ],
        customers: TxRbTree::create(&rt),
    };

    // ---- setup: populate the relation tables (sequential, transactional
    // like STAMP's manager_add* calls, but single-threaded) ----
    {
        let mut w = rt.spawn_worker();
        let mut rng = SplitMix64::new(cfg.seed);
        for t in 0..NUM_TYPES {
            let table = mgr.tables[t as usize];
            for id in 0..cfg.relations {
                let total = 50 + rng.below(50);
                let price = 50 + rng.below(450);
                w.txn(|tx| {
                    let rec = tx.alloc(R_WORDS * 8)?;
                    resource_init(tx, rec, total, price)?;
                    table.insert(tx, id, rec.raw())
                });
            }
        }
        w.flush_stats();
    }
    rt.reset_stats(); // measure only the parallel phase

    let range = (cfg.relations * cfg.query_range_pct / 100).max(1);
    let mgr_ref = &mgr;
    let elapsed = run_parallel(&rt, threads, |w, t| {
        let (lo, hi) = chunk(cfg.tasks, threads, t);
        let mut rng = SplitMix64::new(cfg.seed ^ (0x1000 + t as u64));
        for task in lo..hi {
            let action = rng.below(100);
            if action < cfg.user_pct {
                make_reservation(w, mgr_ref, &mut rng, cfg, range, task);
            } else if action < cfg.user_pct + (100 - cfg.user_pct) / 2 {
                delete_customer(w, mgr_ref, &mut rng, cfg, range);
            } else {
                update_tables(w, mgr_ref, &mut rng, cfg, range);
            }
        }
    });

    let stats = rt.collect_stats();
    let verified = verify(&rt, &mgr, cfg);
    RunOutcome {
        benchmark: name,
        threads,
        elapsed,
        stats,
        verified,
    }
}

fn make_reservation(
    w: &mut WorkerCtx<'_>,
    mgr: &Manager,
    rng: &mut SplitMix64,
    cfg: &Config,
    range: u64,
    task: u64,
) {
    // Pre-draw the query ids (the transaction body must be idempotent
    // across retries).
    let queries: Vec<(usize, u64)> = (0..cfg.queries_per_task)
        .map(|_| (rng.below(NUM_TYPES) as usize, rng.below(range)))
        .collect();
    let customer_id = rng.below(range);
    w.txn(|tx| {
        // Query phase: find the highest-priced available resource per type
        // (STAMP reserves the "best" it saw).
        let mut best: [Option<u64>; NUM_TYPES as usize] = [None; NUM_TYPES as usize];
        let mut best_price: [u64; NUM_TYPES as usize] = [0; NUM_TYPES as usize];
        for &(ty, id) in &queries {
            if let Some(rec) = mgr.tables[ty].find(tx, id)? {
                let rec = Addr::from_raw(rec);
                let avail = tx.read(&S_RES_R, rec.word(R_AVAIL))?;
                let price = tx.read(&S_RES_R, rec.word(R_PRICE))?;
                if avail > 0 && price >= best_price[ty] {
                    best[ty] = Some(id);
                    best_price[ty] = price;
                }
            }
        }
        if best.iter().all(|b| b.is_none()) {
            return Ok(()); // nothing to reserve
        }
        // Customer lookup; create on first reservation (captured record).
        let cust = match mgr.customers.find(tx, customer_id)? {
            Some(c) => Addr::from_raw(c),
            None => {
                let c = tx.alloc(C_WORDS * 8)?;
                tx.write(&S_CUST_INIT, c, 0)?; // list head
                tx.write(&S_CUST_INIT, c.word(1), 0)?; // list size
                mgr.customers.insert(tx, customer_id, c.raw())?;
                c
            }
        };
        let reservations = TxList { handle: cust };
        for ty in 0..NUM_TYPES as usize {
            if let Some(id) = best[ty] {
                let rec = Addr::from_raw(mgr.tables[ty].find(tx, id)?.expect("still present"));
                let avail = tx.read(&S_RES_R, rec.word(R_AVAIL))?;
                if avail == 0 {
                    continue;
                }
                // Reservation key: unique per (type, id, task) so repeat
                // bookings by the same customer are kept distinct.
                let key = (ty as u64 * cfg.relations + id) * cfg.tasks + task;
                if reservations.insert(tx, key, best_price[ty])? {
                    tx.write(&S_RES_W, rec.word(R_AVAIL), avail - 1)?;
                }
            }
        }
        Ok(())
    });
}

fn delete_customer(
    w: &mut WorkerCtx<'_>,
    mgr: &Manager,
    rng: &mut SplitMix64,
    cfg: &Config,
    range: u64,
) {
    let customer_id = rng.below(range);
    w.txn(|tx| {
        let Some(cust) = mgr.customers.find(tx, customer_id)? else {
            return Ok(());
        };
        let cust = Addr::from_raw(cust);
        let reservations = TxList { handle: cust };
        // Release every reservation back to its table. The resource record
        // must still exist: update_tables only retires fully idle resources.
        while let Some((key, _price)) = reservations.pop_front(tx)? {
            let resource_key = key / cfg.tasks;
            let ty = (resource_key / cfg.relations) as usize;
            let id = resource_key % cfg.relations;
            if let Some(rec) = mgr.tables[ty].find(tx, id)? {
                let rec = Addr::from_raw(rec);
                let avail = tx.read(&S_RES_R, rec.word(R_AVAIL))?;
                tx.write(&S_RES_W, rec.word(R_AVAIL), avail + 1)?;
            }
        }
        mgr.customers.remove(tx, customer_id)?;
        tx.free(cust);
        Ok(())
    });
}

fn update_tables(
    w: &mut WorkerCtx<'_>,
    mgr: &Manager,
    rng: &mut SplitMix64,
    cfg: &Config,
    range: u64,
) {
    let ops: Vec<(usize, u64, bool, u64, u64)> = (0..cfg.queries_per_task)
        .map(|_| {
            (
                rng.below(NUM_TYPES) as usize,
                rng.below(range),
                rng.below(2) == 0,
                50 + rng.below(50),
                50 + rng.below(450),
            )
        })
        .collect();
    w.txn(|tx| {
        for &(ty, id, add, total, price) in &ops {
            let table = mgr.tables[ty];
            if add {
                match table.find(tx, id)? {
                    Some(rec) => {
                        // Existing resource: just refresh the price.
                        let rec = Addr::from_raw(rec);
                        tx.write(&S_RES_W, rec.word(R_PRICE), price)?;
                    }
                    None => {
                        let rec = tx.alloc(R_WORDS * 8)?;
                        resource_init(tx, rec, total, price)?;
                        table.insert(tx, id, rec.raw())?;
                    }
                }
            } else if let Some(rec) = table.find(tx, id)? {
                // Retire only fully idle resources so conservation holds.
                let rec = Addr::from_raw(rec);
                let tot = tx.read(&S_RES_R, rec.word(R_TOTAL))?;
                let avail = tx.read(&S_RES_R, rec.word(R_AVAIL))?;
                if tot == avail {
                    table.remove(tx, id)?;
                    tx.free(rec);
                }
            }
        }
        Ok(())
    });
}

fn verify(rt: &StmRuntime, mgr: &Manager, cfg: &Config) -> bool {
    let w = rt.spawn_worker();
    // Gather reservations per resource from all customers.
    let mut reserved = std::collections::HashMap::<(usize, u64), u64>::new();
    for (_cid, cust) in mgr.customers.seq_collect(&w) {
        let list = TxList {
            handle: Addr::from_raw(cust),
        };
        for (key, _price) in list.seq_collect(&w) {
            let resource_key = key / cfg.tasks;
            let ty = (resource_key / cfg.relations) as usize;
            let id = resource_key % cfg.relations;
            *reserved.entry((ty, id)).or_insert(0) += 1;
        }
    }
    // Check conservation on every resource.
    for ty in 0..NUM_TYPES as usize {
        mgr.tables[ty].seq_check_invariants(&w);
        for (id, rec) in mgr.tables[ty].seq_collect(&w) {
            let rec = Addr::from_raw(rec);
            let total = w.load(rec.word(R_TOTAL));
            let avail = w.load(rec.word(R_AVAIL));
            let held = reserved.remove(&(ty, id)).unwrap_or(0);
            if total != avail + held {
                eprintln!(
                    "vacation verify: type {ty} id {id}: total {total} != avail {avail} + held {held}"
                );
                return false;
            }
        }
    }
    mgr.customers.seq_check_invariants(&w);
    // Reservations pointing at removed resources would be a bug.
    if !reserved.is_empty() {
        eprintln!("vacation verify: reservations for missing resources: {reserved:?}");
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm::Mode;

    #[test]
    fn runs_and_verifies_single_thread() {
        let cfg = Config::scaled(Scale::Test, true);
        let out = run(&cfg, TxConfig::default(), 1);
        assert!(out.verified);
        assert!(out.stats.commits >= cfg.tasks);
    }

    #[test]
    fn runs_and_verifies_multithreaded_all_modes() {
        for mode in [
            Mode::Baseline,
            Mode::Compiler,
            Mode::CompilerInterproc,
            Mode::Runtime {
                log: stm::LogKind::Tree,
                scope: stm::CheckScope::FULL,
            },
            Mode::Runtime {
                log: stm::LogKind::Array,
                scope: stm::CheckScope::WRITES_HEAP,
            },
            Mode::Runtime {
                log: stm::LogKind::Filter,
                scope: stm::CheckScope::FULL,
            },
        ] {
            let cfg = Config::scaled(Scale::Test, true);
            let out = run(&cfg, TxConfig::with_mode(mode), 4);
            assert!(out.verified, "verification failed under {mode:?}");
        }
    }

    #[test]
    fn capture_analysis_finds_elisions() {
        let cfg = Config::scaled(Scale::Test, true);
        let out = run(&cfg, TxConfig::runtime_tree_full(), 2);
        assert!(out.verified);
        let writes = out.stats.writes;
        assert!(
            writes.elided() as f64 / writes.total as f64 > 0.3,
            "vacation should elide a large share of write barriers: {:?}",
            writes
        );
    }

    #[test]
    fn low_contention_config_differs() {
        let hi = Config::scaled(Scale::Test, true);
        let lo = Config::scaled(Scale::Test, false);
        assert!(hi.queries_per_task > lo.queries_per_task);
        assert!(hi.query_range_pct < lo.query_range_pct);
        let out = run(&lo, TxConfig::default(), 2);
        assert!(out.verified);
    }
}
