//! `genome` — gene sequencing (STAMP `genome`).
//!
//! Phase 1 deduplicates segments into a transactional hash set (hash-table
//! inserts allocate chain nodes — captured memory). Phase 2 links unique
//! segments into the reconstructed sequence by matching overlaps (here:
//! successor keys), writing shared link words. The mix reproduces genome's
//! Figure-8 profile: a solid captured-write share from phase-1 node
//! allocation plus plenty of required shared reads from probing.

use stm::{Site, StmRuntime, TxConfig};
use txmem::MemConfig;

use crate::collections::TxHashtable;
use crate::rng::SplitMix64;

use super::{chunk, run_parallel, RunOutcome, Scale};

static S_LINK_W: Site = Site::shared("genome.link.write");
static S_LINK_R: Site = Site::shared("genome.link.read");

#[derive(Clone, Debug)]
pub struct Config {
    /// Number of distinct segments (the "gene" length).
    pub uniques: u64,
    /// Total segments sampled (with duplicates), >= uniques.
    pub segments: u64,
    pub buckets: u64,
    pub seed: u64,
}

impl Config {
    pub fn scaled(scale: Scale) -> Config {
        let (uniques, segments) = match scale {
            Scale::Test => (256, 1024),
            Scale::Small => (1 << 11, 1 << 13),
            Scale::Full => (1 << 14, 1 << 16),
        };
        Config {
            uniques,
            segments,
            buckets: (uniques / 4).max(16),
            seed: 0x9e0,
        }
    }
}

pub fn run(cfg: &Config, txcfg: TxConfig, threads: usize) -> RunOutcome {
    let mem = MemConfig {
        max_threads: threads.max(1) + 2,
        stack_words: 1 << 12,
        heap_words: (cfg.uniques * 32 + cfg.buckets * 2 + (1 << 16)) as usize,
    };
    let rt = StmRuntime::new(mem, txcfg);
    let set = TxHashtable::create(&rt, cfg.buckets);
    // links[k] = successor of segment k in the reconstructed sequence.
    let links = rt.alloc_global(cfg.uniques * 8);

    // The segment sample: every unique key appears at least once, the rest
    // are duplicates — deterministic shuffle.
    let mut sample: Vec<u64> = Vec::with_capacity(cfg.segments as usize);
    {
        let mut rng = SplitMix64::new(cfg.seed);
        for k in 0..cfg.uniques {
            sample.push(k);
        }
        for _ in cfg.uniques..cfg.segments {
            sample.push(rng.below(cfg.uniques));
        }
        for i in (1..sample.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            sample.swap(i, j);
        }
        let w = rt.spawn_worker();
        for k in 0..cfg.uniques {
            w.store(links.word(k), u64::MAX); // "no successor yet"
        }
    }
    rt.reset_stats();

    let sample_ref = &sample;
    // ---- phase 1: deduplication ----
    let e1 = run_parallel(&rt, threads, |w, t| {
        let (lo, hi) = chunk(cfg.segments, threads, t);
        for i in lo..hi {
            let key = sample_ref[i as usize];
            w.txn(|tx| set.insert(tx, key, key));
        }
    });
    // ---- phase 2: overlap matching / linking ----
    let e2 = run_parallel(&rt, threads, |w, t| {
        let (lo, hi) = chunk(cfg.uniques, threads, t);
        for k in lo..hi {
            w.txn(|tx| {
                // Probe for this segment and its successor-by-overlap.
                if set.find(tx, k)?.is_some()
                    && k + 1 < cfg.uniques
                    && set.find(tx, k + 1)?.is_some()
                {
                    let cur = tx.read(&S_LINK_R, links.word(k))?;
                    if cur == u64::MAX {
                        tx.write(&S_LINK_W, links.word(k), k + 1)?;
                    }
                }
                Ok(())
            });
        }
    });

    let stats = rt.collect_stats();
    // Verify: the set holds exactly the unique keys, and the links chain
    // every segment to its successor.
    let w = rt.spawn_worker();
    let mut verified = set.seq_len(&w) == cfg.uniques;
    let mut keys: Vec<u64> = set.seq_collect(&w).into_iter().map(|(k, _)| k).collect();
    keys.sort_unstable();
    verified &= keys == (0..cfg.uniques).collect::<Vec<_>>();
    for k in 0..cfg.uniques - 1 {
        verified &= w.load(links.word(k)) == k + 1;
    }
    verified &= w.load(links.word(cfg.uniques - 1)) == u64::MAX;

    RunOutcome {
        benchmark: "genome",
        threads,
        elapsed: e1 + e2,
        stats,
        verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm::Mode;

    #[test]
    fn runs_and_verifies() {
        let cfg = Config::scaled(Scale::Test);
        for threads in [1, 4] {
            let out = run(&cfg, TxConfig::default(), threads);
            assert!(out.verified, "threads={threads}");
        }
    }

    #[test]
    fn capture_analysis_elides_insert_allocations() {
        let cfg = Config::scaled(Scale::Test);
        let out = run(&cfg, TxConfig::runtime_tree_full(), 2);
        assert!(out.verified);
        assert!(
            out.stats.writes.elided_heap >= cfg.uniques * 3,
            "phase-1 node init writes must be captured"
        );
    }

    #[test]
    fn compiler_mode_verifies_too() {
        let cfg = Config::scaled(Scale::Test);
        let out = run(&cfg, TxConfig::with_mode(Mode::Compiler), 4);
        assert!(out.verified);
        assert!(out.stats.writes.elided_static > 0);
    }
}
