//! `ssca2` — graph kernel 1: parallel adjacency-structure construction
//! (STAMP `ssca2`, from the Scalable Synthetic Compact Applications suite).
//!
//! Threads insert directed edges into per-node adjacency arrays with one
//! tiny transaction per edge (read the degree counter, append, bump). The
//! transactions touch only shared graph memory and perform **no**
//! allocation, so — as the paper finds — there is nothing for capture
//! analysis to elide and the abort rate is ~0 (Table 1's zero row).

use stm::{Site, StmRuntime, TxConfig};
use txmem::MemConfig;

use crate::rng::SplitMix64;

use super::{chunk, run_parallel, RunOutcome, Scale};

static S_DEG_R: Site = Site::shared("ssca2.degree.read");
static S_DEG_W: Site = Site::shared("ssca2.degree.write");
static S_EDGE_W: Site = Site::shared("ssca2.edge.write");

#[derive(Clone, Debug)]
pub struct Config {
    pub nodes: u64,
    pub edges: u64,
    /// Per-node adjacency capacity (edges past it are counted as skipped).
    pub max_degree: u64,
    pub seed: u64,
}

impl Config {
    pub fn scaled(scale: Scale) -> Config {
        let (nodes, edges) = match scale {
            Scale::Test => (256, 1024),
            Scale::Small => (1 << 12, 1 << 14),
            Scale::Full => (1 << 15, 1 << 17),
        };
        Config {
            nodes,
            edges,
            max_degree: (edges / nodes) * 8 + 8,
            seed: 0x55ca2,
        }
    }
}

pub fn run(cfg: &Config, txcfg: TxConfig, threads: usize) -> RunOutcome {
    let stride = cfg.max_degree + 1; // [degree, e_0 .. e_{max-1}]
    let mem = MemConfig {
        max_threads: threads.max(1) + 2,
        stack_words: 1 << 12,
        heap_words: (cfg.nodes * stride + (1 << 14)) as usize,
    };
    let rt = StmRuntime::new(mem, txcfg);
    let adj = rt.alloc_global(cfg.nodes * stride * 8);

    // Edge list (R-MAT-ish skew: square the draw to bias toward low ids).
    let mut edge_list = Vec::with_capacity(cfg.edges as usize);
    {
        let mut rng = SplitMix64::new(cfg.seed);
        for _ in 0..cfg.edges {
            let u = (rng.next_f64() * rng.next_f64() * cfg.nodes as f64) as u64 % cfg.nodes;
            let v = rng.below(cfg.nodes);
            edge_list.push((u, v));
        }
        let w = rt.spawn_worker();
        for n in 0..cfg.nodes {
            w.store(adj.word(n * stride), 0);
        }
    }
    rt.reset_stats();

    let skipped = std::sync::atomic::AtomicU64::new(0);
    let edges_ref = &edge_list;
    let elapsed = run_parallel(&rt, threads, |w, t| {
        let (lo, hi) = chunk(cfg.edges, threads, t);
        let mut my_skipped = 0;
        for i in lo..hi {
            let (u, v) = edges_ref[i as usize];
            let inserted = w.txn(|tx| {
                let deg_slot = adj.word(u * stride);
                let deg = tx.read(&S_DEG_R, deg_slot)?;
                if deg >= cfg.max_degree {
                    return Ok(false);
                }
                // Deliberately a degenerate one-word ranged write: the
                // adjacency slot is a single word, so this exercises the
                // ranged pipeline's single-word path (`ranged_fallbacks`
                // telemetry) in a real workload.
                tx.write_range(&S_EDGE_W, adj.word(u * stride + 1 + deg), &[v])?;
                tx.write(&S_DEG_W, deg_slot, deg + 1)?;
                Ok(true)
            });
            if !inserted {
                my_skipped += 1;
            }
        }
        skipped.fetch_add(my_skipped, std::sync::atomic::Ordering::Relaxed);
    });

    let stats = rt.collect_stats();
    // Verify: every edge is either in an adjacency list or was skipped.
    let w = rt.spawn_worker();
    let total_deg: u64 = (0..cfg.nodes).map(|n| w.load(adj.word(n * stride))).sum();
    let verified = total_deg + skipped.load(std::sync::atomic::Ordering::Relaxed) == cfg.edges
        && (0..cfg.nodes).all(|n| w.load(adj.word(n * stride)) <= cfg.max_degree);

    RunOutcome {
        benchmark: "ssca2",
        threads,
        elapsed,
        stats,
        verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_verifies() {
        let cfg = Config::scaled(Scale::Test);
        for threads in [1, 4] {
            let out = run(&cfg, TxConfig::default(), threads);
            assert!(out.verified, "threads={threads}");
            assert_eq!(out.stats.commits, cfg.edges);
        }
    }

    #[test]
    fn nothing_to_elide() {
        let cfg = Config::scaled(Scale::Test);
        let out = run(&cfg, TxConfig::runtime_tree_full(), 2);
        assert!(out.verified);
        assert_eq!(out.stats.all_accesses().elided(), 0);
    }
}
