//! `yada` — "yet another Delaunay application": cavity-based mesh
//! refinement (STAMP `yada`).
//!
//! Workers pop the worst ("bad") element from a shared priority queue,
//! gather a *cavity* around it — collected into a transaction-local list
//! (captured header and nodes!) — remove the cavity's elements from the
//! shared mesh, and retriangulate: several freshly allocated element
//! records (captured initialization) inserted back into the mesh, with any
//! new bad elements re-queued.
//!
//! yada is the write-heaviest STAMP program and performs many allocations
//! per transaction — more than a cache line of ranges — which is exactly
//! why the paper's Figure 9 shows the **array** log losing elisions here
//! while tree and filtering keep them.

use stm::{Site, StmRuntime, TxConfig};
use txmem::{Addr, MemConfig};

use crate::collections::{ListIter, TxHashtable, TxHeapQueue, TxList};
use crate::rng::SplitMix64;

use super::{run_parallel, RunOutcome, Scale};

// Element record: [quality, n0, n1, n2]
const E_QUAL: u64 = 0;
const E_N0: u64 = 1;
const E_WORDS: u64 = 4;
const NO_NEIGHBOR: u64 = u64::MAX;

/// Elements with quality below this are "bad" and need refinement (stands
/// in for the minimum-angle criterion).
const BAD_THRESHOLD: u64 = 50;

static S_ELEM_R: Site = Site::shared("yada.element.read");
static S_ELEM_INIT: Site = Site::captured_local("yada.element_init.write");
static S_CTR_R: Site = Site::shared("yada.counter.read");
static S_CTR_W: Site = Site::shared("yada.counter.write");

#[derive(Clone, Debug)]
pub struct Config {
    pub elements: u64,
    pub seed: u64,
}

impl Config {
    pub fn scaled(scale: Scale) -> Config {
        let elements = match scale {
            Scale::Test => 128,
            Scale::Small => 1 << 11,
            Scale::Full => 1 << 13,
        };
        Config {
            elements,
            seed: 0xda7a,
        }
    }
}

/// Work items are packed (badness << 32) | id so the max-heap pops the
/// worst element first.
fn pack(quality: u64, id: u64) -> u64 {
    ((100 - quality) << 32) | id
}

fn unpack(v: u64) -> u64 {
    v & 0xFFFF_FFFF
}

/// Deterministic quality for a retriangulated element: mostly good, ~20%
/// still bad (keeps the refinement running without rng inside the retried
/// transaction closure).
fn new_quality(id: u64, i: u64) -> u64 {
    let h = (id.wrapping_mul(2654435761).wrapping_add(i * 97)) % 100;
    if h < 20 {
        30 + h // bad
    } else {
        BAD_THRESHOLD + 5 + (h % 45) // good
    }
}

pub fn run(cfg: &Config, txcfg: TxConfig, threads: usize) -> RunOutcome {
    let mem = MemConfig {
        max_threads: threads.max(1) + 2,
        stack_words: 1 << 12,
        heap_words: (cfg.elements * 256 + (1 << 17)) as usize,
    };
    let rt = StmRuntime::new(mem, txcfg);
    let mesh = TxHashtable::create(&rt, (cfg.elements / 4).max(16));
    let work = TxHeapQueue::create(&rt, cfg.elements * 8);
    // Shared words: [next_id, removed, added]
    let counters = rt.alloc_global(3 * 8);

    {
        let mut w = rt.spawn_worker();
        let mut rng = SplitMix64::new(cfg.seed);
        for id in 0..cfg.elements {
            let quality = rng.below(100);
            let neighbors: Vec<u64> = (0..3)
                .map(|_| {
                    if rng.below(4) == 0 {
                        NO_NEIGHBOR
                    } else {
                        rng.below(cfg.elements)
                    }
                })
                .collect();
            w.txn(|tx| {
                let rec = tx.alloc(E_WORDS * 8)?;
                tx.write(&S_ELEM_INIT, rec.word(E_QUAL), quality)?;
                for (i, &n) in neighbors.iter().enumerate() {
                    tx.write(&S_ELEM_INIT, rec.word(E_N0 + i as u64), n)?;
                }
                mesh.insert(tx, id, rec.raw())
            });
            if quality < BAD_THRESHOLD {
                work.seq_push(&w, pack(quality, id));
            }
        }
        w.store(counters, cfg.elements); // next_id
        w.store(counters.word(1), 0); // removed
        w.store(counters.word(2), 0); // added
        w.flush_stats();
    }
    rt.reset_stats();

    let refinements = std::sync::atomic::AtomicU64::new(0);
    let elapsed = run_parallel(&rt, threads, |w, _t| {
        loop {
            let refined = w.txn(|tx| {
                let Some(item) = work.pop(tx)? else {
                    return Ok(false);
                };
                let id = unpack(item);
                let Some(rec) = mesh.find(tx, id)? else {
                    return Ok(true); // stale work item: already refined away
                };
                let rec = Addr::from_raw(rec);

                // ---- build the cavity in a transaction-local list ----
                let cavity = TxList::create_tx(tx)?;
                cavity.insert(tx, id, rec.raw())?;
                for i in 0..3 {
                    let n = tx.read(&S_ELEM_R, rec.word(E_N0 + i))?;
                    if n != NO_NEIGHBOR {
                        if let Some(nrec) = mesh.find(tx, n)? {
                            cavity.insert(tx, n, nrec)?;
                        }
                    }
                }

                // ---- remove the cavity from the mesh (iterating via the
                // captured stack cursor of paper Fig. 1a) ----
                let mut cavity_ids = Vec::new();
                {
                    let mut it = ListIter::begin(tx, &cavity)?;
                    while it.has_next()? {
                        let (cid, crec) = it.next()?;
                        cavity_ids.push(cid);
                        mesh.remove(it.tx(), cid)?;
                        it.tx().free(Addr::from_raw(crec));
                    }
                } // iterator drop pops the cursor frame

                // ---- retriangulate: cavity_len + 1 new elements ----
                let n_new = cavity_ids.len() as u64 + 1;
                let first_new = tx.read(&S_CTR_R, counters)?;
                tx.write(&S_CTR_W, counters, first_new + n_new)?;
                for i in 0..n_new {
                    let new_id = first_new + i;
                    let q = new_quality(new_id, i);
                    let nrec = tx.alloc(E_WORDS * 8)?;
                    tx.write(&S_ELEM_INIT, nrec.word(E_QUAL), q)?;
                    // New elements neighbor each other in a fan.
                    tx.write(&S_ELEM_INIT, nrec.word(E_N0), first_new + (i + 1) % n_new)?;
                    tx.write(
                        &S_ELEM_INIT,
                        nrec.word(E_N0 + 1),
                        first_new + (i + n_new - 1) % n_new,
                    )?;
                    tx.write(&S_ELEM_INIT, nrec.word(E_N0 + 2), NO_NEIGHBOR)?;
                    mesh.insert(tx, new_id, nrec.raw())?;
                    if q < BAD_THRESHOLD {
                        work.push(tx, pack(q, new_id))?;
                    }
                }

                // ---- bookkeeping for verification ----
                let removed = tx.read(&S_CTR_R, counters.word(1))?;
                tx.write(
                    &S_CTR_W,
                    counters.word(1),
                    removed + cavity_ids.len() as u64,
                )?;
                let added = tx.read(&S_CTR_R, counters.word(2))?;
                tx.write(&S_CTR_W, counters.word(2), added + n_new)?;

                // Tear down the (captured) cavity list: nodes were already
                // freed by remove(); free the header.
                tx.free(cavity.handle);
                Ok(true)
            });
            if refined {
                refinements.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            } else {
                break; // work queue empty
            }
        }
    });

    let stats = rt.collect_stats();
    let w = rt.spawn_worker();
    let removed = w.load(counters.word(1));
    let added = w.load(counters.word(2));
    let mut verified = mesh.seq_len(&w) == cfg.elements + added - removed;
    // No bad element may survive in the mesh once the queue is drained.
    if work.seq_len(&w) == 0 {
        for (_id, rec) in mesh.seq_collect(&w) {
            if w.load(Addr::from_raw(rec).word(E_QUAL)) < BAD_THRESHOLD {
                verified = false;
            }
        }
    }
    RunOutcome {
        benchmark: "yada",
        threads,
        elapsed,
        stats,
        verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm::{CheckScope, LogKind, Mode};

    #[test]
    fn refines_until_no_bad_elements() {
        let cfg = Config::scaled(Scale::Test);
        for threads in [1, 4] {
            let out = run(&cfg, TxConfig::default(), threads);
            assert!(out.verified, "threads={threads}");
        }
    }

    #[test]
    fn many_allocations_per_tx_overflow_the_array_log() {
        let cfg = Config::scaled(Scale::Test);
        let tree = run(&cfg, TxConfig::runtime_tree_full(), 1);
        let array = run(
            &cfg,
            TxConfig::with_mode(Mode::Runtime {
                log: LogKind::Array,
                scope: CheckScope::FULL,
            }),
            1,
        );
        assert!(tree.verified && array.verified);
        let tree_frac = tree.stats.writes.elided_fraction();
        let array_frac = array.stats.writes.elided_fraction();
        assert!(
            array_frac < tree_frac,
            "paper Fig. 9: array must lose elisions on yada (tree {tree_frac:.2} vs array {array_frac:.2})"
        );
        assert!(tree_frac > 0.3, "yada is heavily elidable: {tree_frac:.2}");
    }

    #[test]
    fn verification_catches_mesh_counter_mismatch() {
        // Internal consistency of the verification itself: counters match
        // the mesh exactly after a run.
        let cfg = Config::scaled(Scale::Test);
        let out = run(&cfg, TxConfig::with_mode(Mode::Compiler), 2);
        assert!(out.verified);
    }
}
