//! The ten STAMP benchmark configurations measured by the paper.
//!
//! Each app module follows STAMP's shape: a deterministic sequential setup
//! phase, a timed parallel phase of transactions, and a sequential
//! verification pass. [`Benchmark`] is the registry the experiment harness
//! iterates over, in the row order of the paper's Tables 1 and 2.

use std::time::{Duration, Instant};

use stm::{StmRuntime, TxConfig, TxStats, WorkerCtx};

pub mod bayes;
pub mod genome;
pub mod intruder;
pub mod kmeans;
pub mod labyrinth;
pub mod ssca2;
pub mod vacation;
pub mod yada;

/// Most worker threads a benchmark run will provision stack regions for.
/// Thread counts beyond this would silently balloon the simulated address
/// space (every thread owns a stack region); [`Benchmark::run`] rejects
/// them with a clear panic and the `expt` CLI with a clean error.
pub const MAX_THREADS: usize = 64;

/// Input-size scaling. The paper runs STAMP's full inputs on a 24-core
/// machine; `Small` targets seconds-per-run on a laptop-class box, `Test`
/// keeps CI fast.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    Test,
    Small,
    Full,
}

/// Result of one benchmark run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    pub benchmark: &'static str,
    pub threads: usize,
    /// Wall time of the parallel (transactional) phase only, like STAMP's
    /// timer.
    pub elapsed: Duration,
    /// Merged statistics of all workers.
    pub stats: TxStats,
    /// Did the sequential consistency check pass?
    pub verified: bool,
}

/// The ten configurations, in the paper's table order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Benchmark {
    Bayes,
    Genome,
    Intruder,
    KmeansHigh,
    KmeansLow,
    Labyrinth,
    Ssca2,
    VacationHigh,
    VacationLow,
    Yada,
}

impl Benchmark {
    pub const ALL: [Benchmark; 10] = [
        Benchmark::Bayes,
        Benchmark::Genome,
        Benchmark::Intruder,
        Benchmark::KmeansHigh,
        Benchmark::KmeansLow,
        Benchmark::Labyrinth,
        Benchmark::Ssca2,
        Benchmark::VacationHigh,
        Benchmark::VacationLow,
        Benchmark::Yada,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Bayes => "bayes",
            Benchmark::Genome => "genome",
            Benchmark::Intruder => "intruder",
            Benchmark::KmeansHigh => "kmeans high",
            Benchmark::KmeansLow => "kmeans low",
            Benchmark::Labyrinth => "labyrinth",
            Benchmark::Ssca2 => "ssca2",
            Benchmark::VacationHigh => "vacation high",
            Benchmark::VacationLow => "vacation low",
            Benchmark::Yada => "yada",
        }
    }

    /// Run the benchmark under the given STM configuration.
    pub fn run(self, scale: Scale, txcfg: TxConfig, threads: usize) -> RunOutcome {
        assert!(
            (1..=MAX_THREADS).contains(&threads),
            "thread count {threads} out of range (1..={MAX_THREADS})"
        );
        match self {
            Benchmark::Bayes => bayes::run(&bayes::Config::scaled(scale), txcfg, threads),
            Benchmark::Genome => genome::run(&genome::Config::scaled(scale), txcfg, threads),
            Benchmark::Intruder => intruder::run(&intruder::Config::scaled(scale), txcfg, threads),
            Benchmark::KmeansHigh => {
                kmeans::run(&kmeans::Config::scaled(scale, true), txcfg, threads)
            }
            Benchmark::KmeansLow => {
                kmeans::run(&kmeans::Config::scaled(scale, false), txcfg, threads)
            }
            Benchmark::Labyrinth => {
                labyrinth::run(&labyrinth::Config::scaled(scale), txcfg, threads)
            }
            Benchmark::Ssca2 => ssca2::run(&ssca2::Config::scaled(scale), txcfg, threads),
            Benchmark::VacationHigh => {
                vacation::run(&vacation::Config::scaled(scale, true), txcfg, threads)
            }
            Benchmark::VacationLow => {
                vacation::run(&vacation::Config::scaled(scale, false), txcfg, threads)
            }
            Benchmark::Yada => yada::run(&yada::Config::scaled(scale), txcfg, threads),
        }
    }
}

/// Run `work(worker, thread_index)` on `threads` threads and return the wall
/// time of the parallel section.
pub(crate) fn run_parallel<F>(rt: &StmRuntime, threads: usize, work: F) -> Duration
where
    F: Fn(&mut WorkerCtx<'_>, usize) + Sync,
{
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let work = &work;
            s.spawn(move || {
                let mut w = rt.spawn_worker();
                work(&mut w, t);
            });
        }
    });
    start.elapsed()
}

/// Evenly split `total` work items over `threads`; returns `[start, end)`
/// for thread `t`.
pub(crate) fn chunk(total: u64, threads: usize, t: usize) -> (u64, u64) {
    let per = total / threads as u64;
    let rem = total % threads as u64;
    let t = t as u64;
    let start = t * per + t.min(rem);
    let len = per + if t < rem { 1 } else { 0 };
    (start, start + len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_exactly() {
        for total in [0u64, 1, 7, 100] {
            for threads in [1usize, 2, 3, 8] {
                let mut covered = 0;
                let mut prev_end = 0;
                for t in 0..threads {
                    let (s, e) = chunk(total, threads, t);
                    assert_eq!(s, prev_end);
                    prev_end = e;
                    covered += e - s;
                }
                assert_eq!(covered, total, "total={total} threads={threads}");
                assert_eq!(prev_end, total);
            }
        }
    }

    #[test]
    fn names_match_paper_rows() {
        let names: Vec<_> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec![
                "bayes",
                "genome",
                "intruder",
                "kmeans high",
                "kmeans low",
                "labyrinth",
                "ssca2",
                "vacation high",
                "vacation low",
                "yada"
            ]
        );
    }
}
