//! `intruder` — network intrusion detection (STAMP `intruder`).
//!
//! Packet fragments arrive on a shared transactional queue; workers pop a
//! fragment and push it through flow reassembly: the per-flow record is
//! allocated (captured!) by whichever transaction sees the flow first and
//! updated as fragments accumulate; a completed flow is removed from the
//! reassembly table, scanned by the detector, and — if its payload matches
//! the attack signature — reported on a result queue.

use stm::{Site, StmRuntime, TxConfig};
use txmem::{Addr, MemConfig};

use crate::collections::{TxHashtable, TxQueue};
use crate::rng::SplitMix64;

use super::{run_parallel, RunOutcome, Scale};

// Flow record: [received, expected, payload_sum]
const F_RECV: u64 = 0;
const F_EXPECT: u64 = 1;
const F_SUM: u64 = 2;
const F_WORDS: u64 = 3;

static S_FLOW_R: Site = Site::shared("intruder.flow.read");
static S_FLOW_W: Site = Site::shared("intruder.flow.write");
// The expected-count pre-set happens inside `alloc_flow_record`, next to
// its own allocation: intraprocedurally visible in the helper's
// transactional clone.
static S_FLOW_EXPECT_INIT: Site = Site::captured_local("intruder.flow_expect_init.write");
// The caller's init writes go through `alloc_flow_record`'s *return
// value*. The real STAMP constructor (TMFLOW_ALLOC + its fragment-array
// setup) exceeds the bounded-inlining budget, so its TL equivalent is
// never inlined — only the interprocedural returns-captured summary
// proves these targets transaction-local (tests/cross_check.rs renders
// the pattern in TL and checks exactly this).
static S_FLOW_INIT: Site = Site::captured_interproc("intruder.flow_init.write");

#[derive(Clone, Debug)]
pub struct Config {
    pub flows: u64,
    pub frags_per_flow: u64,
    pub buckets: u64,
    pub seed: u64,
}

impl Config {
    pub fn scaled(scale: Scale) -> Config {
        let flows = match scale {
            Scale::Test => 128,
            Scale::Small => 1 << 11,
            Scale::Full => 1 << 14,
        };
        Config {
            flows,
            frags_per_flow: 4,
            buckets: (flows / 4).max(16),
            seed: 0x1277,
        }
    }
}

/// Pack a fragment descriptor into one queue word.
fn pack(flow: u64, payload: u64) -> u64 {
    (flow << 20) | payload
}

fn unpack(v: u64) -> (u64, u64) {
    (v >> 20, v & ((1 << 20) - 1))
}

/// The attack signature: payload sum divisible by 7 (stands in for STAMP's
/// dictionary match against a captured, reassembled byte stream).
fn is_attack(payload_sum: u64) -> bool {
    payload_sum.is_multiple_of(7)
}

/// STAMP `TMFLOW_ALLOC` analogue: allocate a flow record and pre-set the
/// expected fragment count. The record is captured by the calling
/// transaction; the caller finishes initialization through the returned
/// pointer (see [`S_FLOW_INIT`] for why that distinction matters to the
/// static analyses).
fn alloc_flow_record(tx: &mut stm::Tx<'_, '_>, expect: u64) -> stm::TxResult<Addr> {
    let rec = tx.alloc(F_WORDS * 8)?;
    tx.write(&S_FLOW_EXPECT_INIT, rec.word(F_EXPECT), expect)?;
    Ok(rec)
}

/// Process one packet fragment: pop, reassemble, detect, report. Returns
/// `Ok(true)` when the packet queue is drained. This is the body of one
/// *logical* transaction — the unmerged loop runs it once per `txn`, the
/// merged loop (`TxConfig::merge_max > 1`) packs up to `merge_max`
/// invocations into one physical transaction via `txn_batch`, which keeps
/// each flow record captured across the fragments that touch it within a
/// window.
fn process_fragment(
    tx: &mut stm::Tx<'_, '_>,
    cfg: &Config,
    packets: &TxQueue,
    reassembly: &TxHashtable,
    results: &TxQueue,
) -> stm::TxResult<bool> {
    let Some(frag) = packets.pop(tx)? else {
        return Ok(true); // queue drained
    };
    let (flow, payload) = unpack(frag);
    let rec = match reassembly.find(tx, flow)? {
        Some(r) => {
            // Known flow: accumulate (shared writes).
            let r = Addr::from_raw(r);
            let recv = tx.read(&S_FLOW_R, r.word(F_RECV))?;
            let sum = tx.read(&S_FLOW_R, r.word(F_SUM))?;
            tx.write(&S_FLOW_W, r.word(F_RECV), recv + 1)?;
            tx.write(&S_FLOW_W, r.word(F_SUM), sum + payload)?;
            r
        }
        None => {
            // First fragment: the record is captured by this
            // transaction, so its initialization is elidable — but the
            // allocation sits in a helper, so only the interprocedural
            // analysis sees it.
            let r = alloc_flow_record(tx, cfg.frags_per_flow)?;
            tx.write(&S_FLOW_INIT, r.word(F_RECV), 1)?;
            tx.write(&S_FLOW_INIT, r.word(F_SUM), payload)?;
            reassembly.insert(tx, flow, r.raw())?;
            r
        }
    };
    let recv = tx.read(&S_FLOW_R, rec.word(F_RECV))?;
    let expect = tx.read(&S_FLOW_R, rec.word(F_EXPECT))?;
    if recv == expect {
        // Flow complete: detach, detect, report.
        let sum = tx.read(&S_FLOW_R, rec.word(F_SUM))?;
        reassembly.remove(tx, flow)?;
        tx.free(rec);
        if is_attack(sum) {
            results.push(tx, flow)?;
        }
    }
    Ok(false)
}

pub fn run(cfg: &Config, txcfg: TxConfig, threads: usize) -> RunOutcome {
    let total_frags = cfg.flows * cfg.frags_per_flow;
    let mem = MemConfig {
        max_threads: threads.max(1) + 2,
        stack_words: 1 << 12,
        heap_words: (cfg.flows * 64 + total_frags * 4 + (1 << 16)) as usize,
    };
    let rt = StmRuntime::new(mem, txcfg);
    let packets = TxQueue::create(&rt, total_frags + 2);
    let reassembly = TxHashtable::create(&rt, cfg.buckets);
    let results = TxQueue::create(&rt, cfg.flows + 2);

    // Expected attack count, computed while generating the traffic.
    let mut expected_attacks = 0u64;
    {
        let w = rt.spawn_worker();
        let mut rng = SplitMix64::new(cfg.seed);
        let mut frags = Vec::with_capacity(total_frags as usize);
        for flow in 0..cfg.flows {
            let mut sum = 0;
            for _ in 0..cfg.frags_per_flow {
                let payload = rng.below(1000);
                sum += payload;
                frags.push(pack(flow, payload));
            }
            if is_attack(sum) {
                expected_attacks += 1;
            }
        }
        // Interleave fragments of different flows (network reordering).
        for i in (1..frags.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            frags.swap(i, j);
        }
        for f in frags {
            packets.seq_push(&w, f);
        }
    }
    rt.reset_stats();

    let merge = txcfg.merge_max.max(1) as usize;
    let elapsed = run_parallel(&rt, threads, |w, _t| {
        if merge > 1 {
            // Merged packet loop: up to `merge` fragments per physical
            // transaction. The drained-queue invocation stops the batch
            // and still commits (the merged analogue of the unmerged
            // loop's final drained commit), so a batch that comes back
            // short means the queue is empty.
            loop {
                let run = w.txn_batch(merge, |b| {
                    let drained = process_fragment(b, cfg, &packets, &reassembly, &results)?;
                    Ok(!drained)
                });
                if run.committed < merge as u64 {
                    break;
                }
            }
        } else {
            loop {
                let done = w.txn(|tx| process_fragment(tx, cfg, &packets, &reassembly, &results));
                if done {
                    break;
                }
            }
        }
    });

    let stats = rt.collect_stats();
    let w = rt.spawn_worker();
    let verified = reassembly.seq_len(&w) == 0 && results.seq_len(&w) == expected_attacks;
    RunOutcome {
        benchmark: "intruder",
        threads,
        elapsed,
        stats,
        verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm::Mode;

    #[test]
    fn detects_the_right_attacks() {
        let cfg = Config::scaled(Scale::Test);
        for threads in [1, 4] {
            let out = run(&cfg, TxConfig::default(), threads);
            assert!(out.verified, "threads={threads}");
            assert_eq!(
                out.stats.commits,
                cfg.flows * cfg.frags_per_flow + threads as u64,
                "one commit per fragment + one drained-queue commit per thread"
            );
        }
    }

    #[test]
    fn flow_records_are_captured_on_creation() {
        let cfg = Config::scaled(Scale::Test);
        let out = run(&cfg, TxConfig::runtime_tree_full(), 2);
        assert!(out.verified);
        // Every flow's first fragment initializes a captured record (3
        // writes) plus a captured hashtable node (3 writes).
        assert!(out.stats.writes.elided_heap >= cfg.flows * 6);
    }

    #[test]
    fn all_modes_agree_on_attack_count() {
        let cfg = Config::scaled(Scale::Test);
        for mode in [
            Mode::Baseline,
            Mode::Compiler,
            Mode::CompilerInterproc,
            Mode::Runtime {
                log: stm::LogKind::Array,
                scope: stm::CheckScope::FULL,
            },
        ] {
            let out = run(&cfg, TxConfig::with_mode(mode), 4);
            assert!(out.verified, "{mode:?}");
        }
    }

    #[test]
    fn merged_packet_loop_detects_the_same_attacks() {
        let cfg = Config::scaled(Scale::Test);
        let merged = TxConfig::builder()
            .mode(Mode::Runtime {
                log: stm::LogKind::Tree,
                scope: stm::CheckScope::FULL,
            })
            .merge_max(8)
            .build()
            .unwrap();
        for threads in [1, 4] {
            let out = run(&cfg, merged, threads);
            assert!(out.verified, "threads={threads}");
            assert_eq!(
                out.stats.commits,
                cfg.flows * cfg.frags_per_flow + threads as u64,
                "logical commits: one per fragment + one drained stop per thread"
            );
            assert!(
                out.stats.merged_txns > 0,
                "the merged loop must actually merge: {:?}",
                out.stats
            );
        }
    }

    #[test]
    fn interproc_mode_elides_the_helper_pattern() {
        // The flow-record init writes flow through `alloc_flow_record`'s
        // return value: invisible to the intraprocedural compiler mode,
        // elided by the interprocedural one.
        let cfg = Config::scaled(Scale::Test);
        let intra = run(&cfg, TxConfig::with_mode(Mode::Compiler), 1);
        let inter = run(&cfg, TxConfig::with_mode(Mode::CompilerInterproc), 1);
        assert!(intra.verified && inter.verified);
        assert_eq!(intra.stats.writes.elided_static_interproc, 0);
        // Two S_FLOW_INIT writes per flow.
        assert!(inter.stats.writes.elided_static_interproc >= cfg.flows * 2);
        assert!(
            inter.stats.all_accesses().elided() > intra.stats.all_accesses().elided(),
            "interproc mode must elide strictly more"
        );
    }
}
