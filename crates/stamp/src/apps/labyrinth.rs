//! `labyrinth` — parallel maze routing (Lee's algorithm, STAMP `labyrinth`).
//!
//! Each transaction routes one (source, destination) pair: a breadth-first
//! expansion over the shared grid (transactional reads of every visited
//! cell) followed by claiming the path cells (transactional writes). Two
//! paths crossing the same cells conflict and one retries.
//!
//! This is the one STAMP program where the paper found **no** redundant
//! barriers (Figure 8): every access touches the shared grid. Our port
//! keeps that property — the BFS bookkeeping lives in ordinary Rust locals,
//! exactly like STAMP's privatized copies, and everything that goes through
//! the STM is genuinely shared.

use stm::{Site, StmRuntime, TxConfig};
use txmem::MemConfig;

use crate::rng::SplitMix64;

use super::{run_parallel, RunOutcome, Scale};

static S_GRID_R: Site = Site::shared("labyrinth.grid.read");
static S_GRID_W: Site = Site::shared("labyrinth.grid.write");

#[derive(Clone, Debug)]
pub struct Config {
    pub width: u64,
    pub height: u64,
    pub paths: u64,
    pub seed: u64,
}

impl Config {
    pub fn scaled(scale: Scale) -> Config {
        let (side, paths) = match scale {
            Scale::Test => (24, 24),
            Scale::Small => (64, 96),
            Scale::Full => (192, 384),
        };
        Config {
            width: side,
            height: side,
            paths,
            seed: 0x1ab,
        }
    }
}

pub fn run(cfg: &Config, txcfg: TxConfig, threads: usize) -> RunOutcome {
    let cells = cfg.width * cfg.height;
    let mem = MemConfig {
        max_threads: threads.max(1) + 2,
        stack_words: 1 << 12,
        heap_words: (cells + (1 << 14)) as usize,
    };
    let rt = StmRuntime::new(mem, txcfg);
    let grid = rt.alloc_global(cells * 8); // 0 = empty, else path id + 1

    // Distinct endpoints for every path.
    let mut endpoints = Vec::with_capacity(cfg.paths as usize);
    {
        let mut rng = SplitMix64::new(cfg.seed);
        let mut used = std::collections::HashSet::new();
        while endpoints.len() < cfg.paths as usize {
            let src = rng.below(cells);
            let dst = rng.below(cells);
            if src != dst && used.insert(src) && used.insert(dst) {
                endpoints.push((src, dst));
            }
        }
    }
    rt.reset_stats();

    let routed = std::sync::atomic::AtomicU64::new(0);
    let next_task = std::sync::atomic::AtomicU64::new(0);
    let eps = &endpoints;
    let elapsed = run_parallel(&rt, threads, |w, _t| {
        loop {
            let task = next_task.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if task >= cfg.paths {
                break;
            }
            let (src, dst) = eps[task as usize];
            let path_id = task + 1;
            let found = w.txn(|tx| {
                // BFS expansion, reading cells transactionally. Parent map
                // and frontier are plain Rust locals re-created per attempt
                // (= STAMP's privatized expansion grid).
                let mut parent: Vec<i64> = vec![-1; cells as usize];
                let mut frontier = std::collections::VecDeque::new();
                // An earlier path may have routed *through* our endpoints;
                // such a pair is unroutable (STAMP gives up on it too).
                if tx.read(&S_GRID_R, grid.word(src))? != 0
                    || tx.read(&S_GRID_R, grid.word(dst))? != 0
                {
                    return Ok(false);
                }
                parent[src as usize] = src as i64;
                frontier.push_back(src);
                let mut reached = false;
                'bfs: while let Some(cur) = frontier.pop_front() {
                    let (x, y) = (cur % cfg.width, cur / cfg.width);
                    for (dx, dy) in [(1i64, 0i64), (-1, 0), (0, 1), (0, -1)] {
                        let nx = x as i64 + dx;
                        let ny = y as i64 + dy;
                        if nx < 0 || ny < 0 || nx >= cfg.width as i64 || ny >= cfg.height as i64 {
                            continue;
                        }
                        let n = (ny as u64 * cfg.width + nx as u64) as usize;
                        if parent[n] != -1 {
                            continue;
                        }
                        // Transactional read of the shared grid cell.
                        if tx.read(&S_GRID_R, grid.word(n as u64))? != 0 {
                            continue;
                        }
                        parent[n] = cur as i64;
                        if n as u64 == dst {
                            reached = true;
                            break 'bfs;
                        }
                        frontier.push_back(n as u64);
                    }
                }
                if !reached {
                    return Ok(false);
                }
                // Claim the path (shared writes); walking the parent chain.
                let mut cur = dst;
                loop {
                    tx.write(&S_GRID_W, grid.word(cur), path_id)?;
                    if cur == src {
                        break;
                    }
                    cur = parent[cur as usize] as u64;
                }
                Ok(true)
            });
            if found {
                routed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
    });

    let stats = rt.collect_stats();
    let routed = routed.load(std::sync::atomic::Ordering::Relaxed);

    // Verify: each routed path is a connected corridor of its own id
    // linking src and dst; unrouted ids do not appear in the grid.
    let w = rt.spawn_worker();
    let mut cells_of = std::collections::HashMap::<u64, Vec<u64>>::new();
    for c in 0..cells {
        let v = w.load(grid.word(c));
        if v != 0 {
            cells_of.entry(v).or_default().push(c);
        }
    }
    let mut verified = cells_of.len() as u64 == routed;
    for (path_id, path_cells) in &cells_of {
        let (src, dst) = eps[(path_id - 1) as usize];
        let set: std::collections::HashSet<u64> = path_cells.iter().copied().collect();
        verified &= set.contains(&src) && set.contains(&dst);
        // Connectivity within the claimed cells.
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![src];
        seen.insert(src);
        while let Some(cur) = stack.pop() {
            let (x, y) = (cur % cfg.width, cur / cfg.width);
            for (dx, dy) in [(1i64, 0i64), (-1, 0), (0, 1), (0, -1)] {
                let nx = x as i64 + dx;
                let ny = y as i64 + dy;
                if nx < 0 || ny < 0 || nx >= cfg.width as i64 || ny >= cfg.height as i64 {
                    continue;
                }
                let n = ny as u64 * cfg.width + nx as u64;
                if set.contains(&n) && seen.insert(n) {
                    stack.push(n);
                }
            }
        }
        verified &= seen.contains(&dst);
    }

    RunOutcome {
        benchmark: "labyrinth",
        threads,
        elapsed,
        stats,
        verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_paths_and_verifies() {
        let cfg = Config::scaled(Scale::Test);
        for threads in [1, 4] {
            let out = run(&cfg, TxConfig::default(), threads);
            assert!(out.verified, "threads={threads}");
            assert!(out.stats.commits >= cfg.paths);
        }
    }

    #[test]
    fn no_redundant_barriers() {
        // Paper Figure 8: labyrinth is the one program with nothing to
        // elide.
        let cfg = Config::scaled(Scale::Test);
        let out = run(&cfg, TxConfig::runtime_tree_full(), 2);
        assert!(out.verified);
        assert_eq!(out.stats.all_accesses().elided(), 0);
    }
}
