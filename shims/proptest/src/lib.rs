//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds in containers with no network access, so the real
//! proptest cannot be fetched. This shim provides the (small) API surface
//! the repository's property tests use — `Strategy`, `any`, ranges, tuples,
//! `Just`, `prop_map`, `prop_oneof!`, `collection::vec`, the `proptest!`
//! macro, and `prop_assert*!` — backed by a deterministic SplitMix64
//! generator seeded from the test's module path and case index, so failures
//! reproduce across runs and machines.
//!
//! Differences from real proptest, by design:
//! * no shrinking — a failing case panics with its generated inputs intact
//!   (the deterministic seed makes it reproducible);
//! * `prop_assert!`/`prop_assert_eq!` panic immediately instead of
//!   returning `Err`;
//! * the default case count is 64.

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic per-test generator (SplitMix64).
pub struct TestRng(u64);

impl TestRng {
    /// Seed from the fully-qualified test name and the case index, so every
    /// test gets an independent, reproducible stream.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h ^ (u64::from(case) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; returns 0 for `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Configuration accepted by `proptest! { #![proptest_config(...)] ... }`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of one type. Mirrors proptest's `Strategy` minus
/// shrinking.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Constant strategy.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a full-range uniform generator, for `any::<T>()`.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — uniform over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                debug_assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);

/// Type-erased generator for one `prop_oneof!` arm.
pub type CaseFn<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Weighted union over strategies of one value type (`prop_oneof!`).
pub struct Union<V> {
    cases: Vec<(u32, CaseFn<V>)>,
    total: u32,
}

impl<V> Union<V> {
    pub fn new(cases: Vec<(u32, CaseFn<V>)>) -> Union<V> {
        let total = cases.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted case");
        Union { cases, total }
    }
}

/// Erase one strategy into a generator closure (used by `prop_oneof!`).
pub fn erase<S>(s: S) -> CaseFn<S::Value>
where
    S: Strategy + 'static,
{
    Box::new(move |rng| s.generate(rng))
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(u64::from(self.total)) as u32;
        for (w, gen_fn) in &self.cases {
            if pick < *w {
                return gen_fn(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(strategy, len_range)`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( ($weight as u32, $crate::erase($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( (1u32, $crate::erase($strat)) ),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (cfg = $cfg:expr;
     $( #[test] fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let cases = ($cfg).cases;
                for case in 0..cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn determinism() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = (10..20u8).generate(&mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn union_respects_weights() {
        let s = prop_oneof![9 => Just(1u32), 1 => Just(2u32)];
        let mut rng = TestRng::for_case("weights", 0);
        let ones = (0..1000).filter(|_| s.generate(&mut rng) == 1).count();
        assert!(ones > 700, "expected the 9-weight arm to dominate: {ones}");
    }

    #[test]
    fn vec_lengths() {
        let s = collection::vec(any::<u8>(), 2..5);
        let mut rng = TestRng::for_case("vec", 0);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_smoke(x in 0..10u64, flips in collection::vec(any::<bool>(), 0..4)) {
            prop_assert!(x < 10);
            prop_assert_eq!(flips.len() < 4, true);
        }
    }
}
