//! Offline stand-in for the `criterion` crate.
//!
//! This workspace builds with no network access, so the real criterion
//! cannot be fetched. The shim implements the API surface our benches use —
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — with a plain wall-clock harness: each
//! benchmark runs `sample_size` samples after a warm-up and reports the
//! median time per iteration. No statistics beyond that, no HTML reports,
//! no saved baselines.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level driver handed to `criterion_group!` functions.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        eprintln!("group {name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }
}

/// Identifier for a parameterized benchmark (`bench_with_input`).
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

pub struct BenchmarkGroup<'c> {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size, self.warm_up_time, self.measurement_time);
        f(&mut b);
        b.report(&id.to_string());
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size, self.warm_up_time, self.measurement_time);
        f(&mut b, input);
        b.report(&id.to_string());
        self
    }

    pub fn finish(&mut self) {}
}

/// Timing harness handed to the benchmark closure.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    median_ns: Option<f64>,
}

impl Bencher {
    fn new(sample_size: usize, warm_up_time: Duration, measurement_time: Duration) -> Bencher {
        Bencher {
            sample_size,
            warm_up_time,
            measurement_time,
            median_ns: None,
        }
    }

    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and size the per-sample batch so one sample is long
        // enough for the clock (~50µs) but all samples fit the budget.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warm_up_time.as_nanos() as f64 / warm_iters.max(1) as f64;
        let budget_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let batch = ((budget_ns / per_iter.max(1.0)) as u64).clamp(1, 1 << 24);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.median_ns = Some(samples[samples.len() / 2]);
    }

    fn report(&self, name: &str) {
        match self.median_ns {
            Some(ns) => eprintln!("  {name:<40} {ns:>12.1} ns/iter"),
            None => eprintln!("  {name:<40} (no measurement)"),
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        g.bench_function("noop", |b| b.iter(|| 1u64 + 1));
        g.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }
}
