//! Umbrella crate for the captured-memory STM reproduction.
//!
//! This crate re-exports the workspace members so that examples and
//! integration tests can use a single dependency. See the individual crates
//! for the real implementation:
//!
//! * [`txmem`] — simulated shared memory, stacks, transactional allocator.
//! * [`capture`] — capture-analysis data structures (paper §3.1).
//! * [`stm`] — the STM runtime with capture-optimized barriers.
//! * [`txcc`] — the mini-language STM compiler with static capture analysis
//!   (paper §3.2) and its VM.
//! * [`stamp`] — the STAMP-like benchmark suite used by the evaluation.

pub use capture;
pub use stamp;
pub use stm;
pub use txcc;
pub use txmem;
