//! Cross-checks the two capture analyses against each other — the static
//! one in `txcc` and the dynamic one in the STM runtime — on the same
//! programs. The paper treats them as interchangeable detectors of the
//! same property (transaction-locality), differing only in precision and
//! cost; these tests pin that relationship down:
//!
//! 1. agreement: running *naively instrumented* code under runtime capture
//!    analysis must elide at least every access the compiler would have
//!    removed statically (the tree is precise, the compiler conservative);
//! 2. equivalence of results across instrumentation levels;
//! 3. the DESIGN.md §4.2 bridge: representative `Site` patterns used by
//!    the Rust STAMP ports behave like their TL equivalents.

use stm::{StmRuntime, TxConfig};
use txcc::{build, OptLevel, Vm};
use txmem::MemConfig;

/// Instrumentation counts for one program under both pipelines.
fn both_pipelines(src: &str, entry: &str, args: &[u64]) -> (u64, u64, u64) {
    // Static: how many accesses does the compiler elide?
    let analyzed = build(src, OptLevel::CaptureAnalysis).unwrap();
    let static_elided = analyzed.stats.elided as u64;

    // Dynamic: run the *naive* build under runtime capture analysis.
    let naive = build(src, OptLevel::Naive).unwrap();
    let rt = StmRuntime::new(MemConfig::small(), TxConfig::runtime_tree_full());
    let shared = rt.alloc_global(64 * 8);
    let mut full_args = vec![shared.raw()];
    full_args.extend_from_slice(args);
    let mut w = rt.spawn_worker();
    let mut vm = Vm::new(&naive);
    vm.run(&mut w, entry, &full_args);
    let stats = w.stats;
    drop(w);
    let runtime_elided = stats.reads.elided() + stats.writes.elided();
    let total_barrier_calls = stats.reads.total + stats.writes.total;
    (static_elided, runtime_elided, total_barrier_calls)
}

#[test]
fn runtime_analysis_subsumes_static_on_straightline_code() {
    // One transaction, one captured block, one shared access. Statically 2
    // elidable sites; dynamically the same 2 accesses are captured.
    let src =
        "fn f(s) { atomic { var p = malloc(16); p[0] = 1; p[1] = p[0]; s[0] = 9; } return 0; }";
    let (static_elided, runtime_elided, total) = both_pipelines(src, "f", &[]);
    assert_eq!(static_elided, 3, "p[0]=, p[1]=, p[0] read");
    assert_eq!(
        runtime_elided, 3,
        "runtime tree must find the same accesses"
    );
    assert_eq!(total, 4, "plus the shared store");
}

#[test]
fn runtime_beats_static_when_pointer_flows_through_memory() {
    // The captured pointer is laundered through a captured cell: the
    // static analysis loses it (loads produce Unknown), the runtime log
    // still elides the access — the precision gap of paper Figure 9.
    let src = "fn f(s) {
        atomic {
            var cell = malloc(8);
            var p = malloc(16);
            cell[0] = p;        // captured store (elided both ways)
            var q = cell[0];    // load: static analysis forgets capture
            q[0] = 7;           // static: barrier; runtime: elided
        }
        return 0;
    }";
    let (static_elided, runtime_elided, _) = both_pipelines(src, "f", &[]);
    assert!(
        runtime_elided > static_elided,
        "runtime ({runtime_elided}) must strictly beat static ({static_elided}) here"
    );
}

#[test]
fn results_identical_across_instrumentation_levels() {
    let src = "fn f(s, n) {
        var i = 0;
        while (i < n) {
            atomic {
                var node = malloc(24);
                node[0] = i;
                node[1] = s[0];
                node[2] = node[0] + node[1];
                s[0] = node[2];
            }
            i = i + 1;
        }
        return s[0];
    }";
    let mut results = Vec::new();
    for opt in [OptLevel::Naive, OptLevel::CaptureAnalysis] {
        let prog = build(src, opt).unwrap();
        let rt = StmRuntime::new(MemConfig::small(), TxConfig::default());
        let shared = rt.alloc_global(8);
        let mut w = rt.spawn_worker();
        let mut vm = Vm::new(&prog);
        results.push(vm.run(&mut w, "f", &[shared.raw(), 10]));
    }
    assert_eq!(results[0], results[1]);
    // sum 0..10 of fibonacci-ish accumulation — just require determinism
    // plus a sanity floor.
    assert!(results[0] > 0);
}

#[test]
fn stamp_site_patterns_match_their_tl_equivalents() {
    // DESIGN.md §4.2: the `Site::captured_local` tag used for node-init
    // writes in the Rust collections corresponds to the TL pattern
    // "allocate then initialize in the same function". Verify the real
    // analysis elides exactly those writes on the TL rendering of
    // `TxList::insert`.
    let src = "fn insert(list, key, val) {
        atomic {
            var node = malloc(24);
            node[1] = key;          // Site::captured_local analogues
            node[2] = val;
            node[0] = list[0];      // captured write of shared head read
            list[0] = node;         // Site::shared analogue (link write)
        }
        return 0;
    }";
    let prog = build(src, OptLevel::CaptureAnalysis).unwrap();
    assert_eq!(prog.stats.elided, 3, "the three node-init writes");
    assert_eq!(prog.stats.barriers, 2, "head read + link write");
}

#[test]
fn factory_return_matches_captured_interproc_tag() {
    // DESIGN.md §4.2: `Site::captured_interproc` for intruder's
    // flow-record init writes — the record comes out of a constructor too
    // big for bounded inlining (`alloc_flow_record` ↔ STAMP TMFLOW_ALLOC),
    // so the intraprocedural pipelines keep the caller's barriers and the
    // interprocedural returns-captured summary removes them.
    let factory_body: String = (3..26).map(|i| format!("r[{i}] = 0; ")).collect();
    let src = format!(
        "fn mk_flow(expect) {{ var r = malloc(224); r[1] = expect; {factory_body}return r; }}
         fn handle(s) {{
             atomic {{
                 var r = mk_flow(4);
                 r[0] = 1;
                 r[2] = s[0];
                 s[0] = r;
             }}
             return 0;
         }}"
    );
    // Intraprocedural, even with inlining (the factory exceeds the
    // inliner's statement budget): the caller's init writes stay barriers.
    let inlined = build(&src, OptLevel::CaptureAnalysis).unwrap();
    let mut prog = txcc::parse(&src).unwrap();
    txcc::capture::desugar_address_taken(&mut prog);
    let intra = txcc::analyze_program(&prog);
    let inter = txcc::interproc::analyze_program(&prog);
    // r[0] = 1, r[2] = s[0] (write): interproc-only.
    assert_eq!(
        inter.normal.elided(),
        intra.elided() + 2,
        "the two caller-side init writes are the interprocedural delta"
    );
    assert_eq!(
        inlined.stats.elided, 0,
        "bounded inlining must not reach the oversized factory"
    );
}

#[test]
fn constructor_param_matches_captured_interproc_tag() {
    // DESIGN.md §4.2: `Site::captured_interproc` for vacation's resource
    // init — the caller allocates, `resource_init` (↔ reservation_alloc,
    // whose validation guard is an early return) initializes through the
    // pointer. Parameter capture is a meet over transactional call sites.
    let src = "fn res_init(rec, total, price) {
                   if (total == 0) { return 0; }
                   rec[0] = total;
                   rec[1] = total;
                   rec[2] = price;
                   return 1;
               }
               fn add(s, id) {
                   atomic {
                       var rec = malloc(24);
                       var z = res_init(rec, 50, 90);
                       s[id] = rec;
                   }
                   return 0;
               }
               fn refresh(s, id) {
                   atomic {
                       var rec = malloc(24);
                       var z = res_init(rec, 70, 10);
                       s[id + 1] = rec;
                   }
                   return 0;
               }";
    let mut prog = txcc::parse(src).unwrap();
    txcc::capture::desugar_address_taken(&mut prog);
    let inter = txcc::interproc::analyze_program(&prog);
    // The early return defeats inlining, so the intraprocedural pipeline
    // cannot elide the constructor's stores in any caller...
    let inlined = build(src, OptLevel::CaptureAnalysis).unwrap();
    assert_eq!(inlined.stats.elided, 0);
    // ...while both transactional call sites pass captured memory, so the
    // interprocedural clone elides all three.
    assert_eq!(inter.tx.elided(), 3, "rec[0], rec[1], rec[2] in the clone");
}

#[test]
fn field_awareness_sees_through_read_your_own_write() {
    // Publish-then-reload at a *constant* offset: within one transaction
    // the store holds the orec lock, so the reload provably returns our
    // own value — the field-aware pass keeps the capture fact and elides
    // the downstream store. (The intraprocedural pass cannot: its loads
    // always forget.)
    let src = "fn f(s) {
        atomic {
            var p = malloc(16);
            s[0] = p;           // publish (barrier: shared write)
            var q = s[0];       // reload: read-your-own-write
            q[0] = 7;           // statically elided, field-aware
        }
        return 0;
    }";
    let mut prog = txcc::parse(src).unwrap();
    txcc::capture::desugar_address_taken(&mut prog);
    let inter = txcc::interproc::analyze_program(&prog);
    let intra = txcc::analyze_program(&prog);
    assert_eq!(inter.normal.elided(), 1, "q[0] = 7 only");
    assert_eq!(intra.elided(), 0);
}

#[test]
fn runtime_analysis_still_subsumes_interproc_static() {
    // The precision order must remain: runtime tree ⊇ interprocedural ⊇
    // intraprocedural. A reload at a *data-dependent* offset is the
    // residue only the runtime log can catch: statically the index is
    // unknown, dynamically it is 0 and the loaded pointer is captured.
    let src = "fn f(s) {
        atomic {
            var p = malloc(16);
            var k = s[2];       // unknown index (dynamically 0)
            s[0] = p;           // publish
            var q = s[k];       // fact unreachable: non-constant offset
            q[0] = 7;           // static: barrier; runtime: elided
        }
        return 0;
    }";
    let mut prog = txcc::parse(src).unwrap();
    txcc::capture::desugar_address_taken(&mut prog);
    let inter = txcc::interproc::analyze_program(&prog);
    assert_eq!(inter.normal.elided(), 0, "nothing statically elidable here");
    // The runtime tree elides q[0] = 7 (and nothing else captured).
    let naive = build(src, OptLevel::Naive).unwrap();
    let rt = StmRuntime::new(MemConfig::small(), TxConfig::runtime_tree_full());
    let shared = rt.alloc_global(64 * 8);
    let mut w = rt.spawn_worker();
    let mut vm = Vm::new(&naive);
    vm.run(&mut w, "f", &[shared.raw()]);
    assert!(w.stats.reads.elided() + w.stats.writes.elided() >= 1);
}

#[test]
fn inlined_helper_matches_captured_local_tag() {
    // The collections' helpers are `captured_local` because the paper's
    // compiler inlines small functions: prove the analysis only elides
    // *with* inlining (build() inlines; compile() alone does not).
    let src = "fn set(p, v) { p[0] = v; return 0; }
        fn f() { atomic { var q = malloc(8); var z = set(q, 5); } return 0; }";
    let with_inline = build(src, OptLevel::CaptureAnalysis).unwrap();
    let without = {
        let prog = txcc::parse(src).unwrap();
        txcc::compile(&prog, OptLevel::CaptureAnalysis)
    };
    assert!(
        with_inline.stats.elided >= 1,
        "inlining exposes the capture"
    );
    assert_eq!(
        without.stats.elided, 0,
        "without inlining the callee store stays a barrier in f's context"
    );
}
