//! Validates the static `compiler_elides` site tags of the STAMP suite
//! against ground truth.
//!
//! The Rust-authored workloads carry the compiler-analysis verdict as a
//! constant on each `Site` (DESIGN.md §4.2). If a tag were wrong — a site
//! marked elidable whose target is ever *not* captured at runtime — the
//! Compiler mode would skip a necessary barrier and silently break
//! isolation. The STM's classify mode counts exactly those events
//! (`static_violations`, checked by the precise shadow tree), so this test
//! is the machine-checked proof that the tags are sound.

use stamp::{Benchmark, Scale};
use stm::{Mode, TxConfig};

#[test]
fn compiler_elides_tags_are_sound_on_every_benchmark() {
    // `static_violations` now covers *both* static tags: the classifier
    // checks `compiler_elides_interproc`, which `compiler_elides` implies
    // (constructor invariant, asserted in stm's site tests). Zero here
    // therefore proves the intraprocedural AND interprocedural tags sound.
    for b in Benchmark::ALL {
        let mut cfg = TxConfig::with_mode(Mode::Baseline);
        cfg.classify = true;
        let out = b.run(Scale::Test, cfg, 2);
        assert!(out.verified);
        let all = out.stats.all_accesses();
        assert_eq!(
            all.static_violations,
            0,
            "{}: {} accesses at statically-elidable sites were not captured",
            b.name(),
            all.static_violations
        );
    }
}

#[test]
fn interproc_mode_is_sound_and_never_weaker() {
    // Under Mode::CompilerInterproc every benchmark still verifies, and
    // the mode's total elisions dominate plain compiler mode on every
    // benchmark (strictly on the ones carrying captured_interproc sites).
    let mut strictly_better = 0;
    for b in Benchmark::ALL {
        // One thread: retries would make barrier counts nondeterministic.
        let intra = b.run(Scale::Test, TxConfig::with_mode(Mode::Compiler), 1);
        let inter = b.run(Scale::Test, TxConfig::with_mode(Mode::CompilerInterproc), 1);
        assert!(intra.verified && inter.verified, "{}", b.name());
        let (ei, eo) = (
            intra.stats.all_accesses().elided(),
            inter.stats.all_accesses().elided(),
        );
        assert!(
            eo >= ei,
            "{}: interproc mode elided less ({eo} < {ei})",
            b.name()
        );
        if eo > ei {
            strictly_better += 1;
        }
        // The interproc-only counter moves only in interproc mode.
        assert_eq!(intra.stats.all_accesses().elided_static_interproc, 0);
    }
    assert!(
        strictly_better >= 2,
        "vacation and intruder carry captured_interproc sites"
    );
}

#[test]
fn classification_is_complete() {
    // Every barrier lands in exactly one Figure-8 category.
    for b in Benchmark::ALL {
        let mut cfg = TxConfig::with_mode(Mode::Baseline);
        cfg.classify = true;
        let out = b.run(Scale::Test, cfg, 1);
        let s = out.stats.all_accesses();
        assert_eq!(
            s.class_heap + s.class_stack + s.class_other + s.class_required,
            s.total,
            "{}: classification buckets must partition the barriers",
            b.name()
        );
    }
}
