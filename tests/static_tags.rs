//! Validates the static `compiler_elides` site tags of the STAMP suite
//! against ground truth.
//!
//! The Rust-authored workloads carry the compiler-analysis verdict as a
//! constant on each `Site` (DESIGN.md §4.2). If a tag were wrong — a site
//! marked elidable whose target is ever *not* captured at runtime — the
//! Compiler mode would skip a necessary barrier and silently break
//! isolation. The STM's classify mode counts exactly those events
//! (`static_violations`, checked by the precise shadow tree), so this test
//! is the machine-checked proof that the tags are sound.

use stamp::{Benchmark, Scale};
use stm::{Mode, TxConfig};

#[test]
fn compiler_elides_tags_are_sound_on_every_benchmark() {
    for b in Benchmark::ALL {
        let mut cfg = TxConfig::with_mode(Mode::Baseline);
        cfg.classify = true;
        let out = b.run(Scale::Test, cfg, 2);
        assert!(out.verified);
        let all = out.stats.all_accesses();
        assert_eq!(
            all.static_violations,
            0,
            "{}: {} accesses at compiler_elides sites were not captured",
            b.name(),
            all.static_violations
        );
    }
}

#[test]
fn classification_is_complete() {
    // Every barrier lands in exactly one Figure-8 category.
    for b in Benchmark::ALL {
        let mut cfg = TxConfig::with_mode(Mode::Baseline);
        cfg.classify = true;
        let out = b.run(Scale::Test, cfg, 1);
        let s = out.stats.all_accesses();
        assert_eq!(
            s.class_heap + s.class_stack + s.class_other + s.class_required,
            s.total,
            "{}: classification buckets must partition the barriers",
            b.name()
        );
    }
}
