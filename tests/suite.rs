//! Cross-crate integration: every STAMP benchmark must verify under every
//! barrier-optimization mode and thread count, and modes must agree on
//! deterministic outcomes. This is the repository's broadest correctness
//! gate: a bug in elision (a barrier skipped that was needed) shows up here
//! as a verification failure.

use stamp::{Benchmark, Scale};
use stm::{CheckScope, LogKind, Mode, TxConfig};

fn all_modes() -> Vec<Mode> {
    let mut v = vec![Mode::Baseline, Mode::Compiler, Mode::CompilerInterproc];
    for log in LogKind::ALL {
        v.push(Mode::Runtime {
            log,
            scope: CheckScope::FULL,
        });
    }
    v.push(Mode::Runtime {
        log: LogKind::Tree,
        scope: CheckScope::WRITES_STACK_HEAP,
    });
    v.push(Mode::Runtime {
        log: LogKind::Tree,
        scope: CheckScope::WRITES_HEAP,
    });
    v
}

#[test]
fn every_benchmark_verifies_under_every_mode_single_thread() {
    for b in Benchmark::ALL {
        for mode in all_modes() {
            let out = b.run(Scale::Test, TxConfig::with_mode(mode), 1);
            assert!(out.verified, "{} failed under {mode:?}", b.name());
            assert_eq!(out.stats.aborts, 0, "single thread cannot conflict");
        }
    }
}

#[test]
fn every_benchmark_verifies_multithreaded() {
    for b in Benchmark::ALL {
        for mode in [
            Mode::Baseline,
            Mode::Runtime {
                log: LogKind::Tree,
                scope: CheckScope::FULL,
            },
            Mode::Compiler,
            Mode::CompilerInterproc,
        ] {
            let out = b.run(Scale::Test, TxConfig::with_mode(mode), 4);
            assert!(out.verified, "{} failed under {mode:?} @4T", b.name());
        }
    }
}

#[test]
fn elision_does_not_change_single_thread_commit_counts() {
    // At one thread the workloads are deterministic: every mode must
    // execute exactly the same transactions.
    for b in Benchmark::ALL {
        let base = b.run(Scale::Test, TxConfig::with_mode(Mode::Baseline), 1);
        for mode in all_modes() {
            let out = b.run(Scale::Test, TxConfig::with_mode(mode), 1);
            assert_eq!(
                out.stats.commits,
                base.stats.commits,
                "{} commit count diverged under {mode:?}",
                b.name()
            );
            assert_eq!(
                out.stats.all_accesses().total,
                base.stats.all_accesses().total,
                "{} barrier count diverged under {mode:?}",
                b.name()
            );
        }
    }
}

#[test]
fn runtime_elision_subsumes_compiler_elision() {
    // The precise tree finds every captured access; the static analysis is
    // conservative, so (at one thread, same workload) its elisions can
    // never exceed the tree's.
    for b in Benchmark::ALL {
        let tree = b.run(Scale::Test, TxConfig::runtime_tree_full(), 1);
        let comp = b.run(Scale::Test, TxConfig::with_mode(Mode::Compiler), 1);
        let tree_elided = tree.stats.all_accesses().elided();
        let comp_elided = comp.stats.all_accesses().elided();
        assert!(
            comp_elided <= tree_elided,
            "{}: compiler elided {} > tree {}",
            b.name(),
            comp_elided,
            tree_elided
        );
    }
}

#[test]
fn paper_qualitative_profile_holds() {
    // The headline qualitative facts of Figure 8 at our scale:
    // labyrinth/ssca2/kmeans have (almost) nothing to elide; vacation,
    // genome, intruder, yada and bayes have plenty; writes are more
    // elidable than reads overall.
    let mut total_write_frac = 0.0;
    let mut total_read_frac = 0.0;
    let mut n = 0.0;
    for b in Benchmark::ALL {
        let out = b.run(Scale::Test, TxConfig::runtime_tree_full(), 1);
        let wf = out.stats.writes.elided_fraction();
        let rf = out.stats.reads.elided_fraction();
        match b.name() {
            "labyrinth" | "ssca2" | "kmeans high" | "kmeans low" => {
                assert!(wf < 0.05, "{}: unexpected write elision {wf}", b.name());
            }
            _ => {
                assert!(wf > 0.2, "{}: write elision too low {wf}", b.name());
            }
        }
        total_write_frac += wf;
        total_read_frac += rf;
        n += 1.0;
    }
    assert!(
        total_write_frac / n > total_read_frac / n,
        "paper: writes are more captured than reads"
    );
}
