//! Cross-crate integration: every STAMP benchmark must verify under every
//! barrier-optimization mode and thread count, and modes must agree on
//! deterministic outcomes. This is the repository's broadest correctness
//! gate: a bug in elision (a barrier skipped that was needed) shows up here
//! as a verification failure.

use stamp::{Benchmark, Scale};
use stm::{CheckScope, LogKind, Mode, TxConfig};

fn all_configs() -> Vec<TxConfig> {
    let mut v: Vec<TxConfig> = [Mode::Baseline, Mode::Compiler, Mode::CompilerInterproc]
        .into_iter()
        .map(TxConfig::with_mode)
        .collect();
    for log in LogKind::ALL {
        let cfg = TxConfig::with_mode(Mode::Runtime {
            log,
            scope: CheckScope::FULL,
        });
        v.push(cfg);
        // The same runtime analysis with nursery allocation: alloc-heavy
        // apps (vacation, intruder, yada) exercise region carving,
        // chaining, and O(1) abort reclamation here.
        let mut nur = cfg;
        nur.nursery = true;
        v.push(nur);
    }
    v.push(TxConfig::with_mode(Mode::Runtime {
        log: LogKind::Tree,
        scope: CheckScope::WRITES_STACK_HEAP,
    }));
    v.push(TxConfig::with_mode(Mode::Runtime {
        log: LogKind::Tree,
        scope: CheckScope::WRITES_HEAP,
    }));
    v
}

#[test]
fn every_benchmark_verifies_under_every_mode_single_thread() {
    for b in Benchmark::ALL {
        for cfg in all_configs() {
            let out = b.run(Scale::Test, cfg, 1);
            assert!(out.verified, "{} failed under {}", b.name(), cfg.label());
            assert_eq!(out.stats.aborts, 0, "single thread cannot conflict");
        }
    }
}

#[test]
fn every_benchmark_verifies_multithreaded() {
    for b in Benchmark::ALL {
        for cfg in [
            TxConfig::with_mode(Mode::Baseline),
            TxConfig::runtime_tree_full(),
            TxConfig::runtime_tree_nursery(),
            TxConfig::with_mode(Mode::Compiler),
            TxConfig::with_mode(Mode::CompilerInterproc),
        ] {
            let out = b.run(Scale::Test, cfg, 4);
            assert!(
                out.verified,
                "{} failed under {} @4T",
                b.name(),
                cfg.label()
            );
        }
    }
}

#[test]
fn elision_does_not_change_single_thread_commit_counts() {
    // At one thread the workloads are deterministic: every mode must
    // execute exactly the same transactions.
    for b in Benchmark::ALL {
        let base = b.run(Scale::Test, TxConfig::with_mode(Mode::Baseline), 1);
        for cfg in all_configs() {
            let out = b.run(Scale::Test, cfg, 1);
            assert_eq!(
                out.stats.commits,
                base.stats.commits,
                "{} commit count diverged under {}",
                b.name(),
                cfg.label()
            );
            assert_eq!(
                out.stats.all_accesses().total,
                base.stats.all_accesses().total,
                "{} barrier count diverged under {}",
                b.name(),
                cfg.label()
            );
        }
    }
}

#[test]
fn nursery_covers_the_captured_heap_on_alloc_heavy_apps() {
    // The nursery must agree with the tree on what is elidable (exactness)
    // and serve the bulk of captured-heap verdicts from its scalar range
    // on the allocation-heavy applications.
    for b in Benchmark::ALL {
        let plain = b.run(Scale::Test, TxConfig::runtime_tree_full(), 1);
        let nur = b.run(Scale::Test, TxConfig::runtime_tree_nursery(), 1);
        assert!(nur.verified, "{} failed with nursery", b.name());
        let pa = plain.stats.all_accesses();
        let na = nur.stats.all_accesses();
        assert_eq!(
            (na.elided_stack, na.elided_heap, na.parent_captured, na.full),
            (pa.elided_stack, pa.elided_heap, pa.parent_captured, pa.full),
            "{}: nursery classification diverged from the tree",
            b.name()
        );
        if matches!(
            b.name(),
            "vacation high" | "vacation low" | "intruder" | "yada"
        ) {
            assert!(
                nur.stats.nursery_hits * 2 >= na.elided_heap,
                "{}: nursery served {} of {} heap elisions",
                b.name(),
                nur.stats.nursery_hits,
                na.elided_heap
            );
            assert!(nur.stats.nursery_regions > 0, "{}: no regions", b.name());
        }
    }
}

#[test]
fn runtime_elision_subsumes_compiler_elision() {
    // The precise tree finds every captured access; the static analysis is
    // conservative, so (at one thread, same workload) its elisions can
    // never exceed the tree's.
    for b in Benchmark::ALL {
        let tree = b.run(Scale::Test, TxConfig::runtime_tree_full(), 1);
        let comp = b.run(Scale::Test, TxConfig::with_mode(Mode::Compiler), 1);
        let tree_elided = tree.stats.all_accesses().elided();
        let comp_elided = comp.stats.all_accesses().elided();
        assert!(
            comp_elided <= tree_elided,
            "{}: compiler elided {} > tree {}",
            b.name(),
            comp_elided,
            tree_elided
        );
    }
}

#[test]
fn paper_qualitative_profile_holds() {
    // The headline qualitative facts of Figure 8 at our scale:
    // labyrinth/ssca2/kmeans have (almost) nothing to elide; vacation,
    // genome, intruder, yada and bayes have plenty; writes are more
    // elidable than reads overall.
    let mut total_write_frac = 0.0;
    let mut total_read_frac = 0.0;
    let mut n = 0.0;
    for b in Benchmark::ALL {
        let out = b.run(Scale::Test, TxConfig::runtime_tree_full(), 1);
        let wf = out.stats.writes.elided_fraction();
        let rf = out.stats.reads.elided_fraction();
        match b.name() {
            "labyrinth" | "ssca2" | "kmeans high" | "kmeans low" => {
                assert!(wf < 0.05, "{}: unexpected write elision {wf}", b.name());
            }
            _ => {
                assert!(wf > 0.2, "{}: write elision too low {wf}", b.name());
            }
        }
        total_write_frac += wf;
        total_read_frac += rf;
        n += 1.0;
    }
    assert!(
        total_write_frac / n > total_read_frac / n,
        "paper: writes are more captured than reads"
    );
}
